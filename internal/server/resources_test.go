package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestTrailerResources pins the tentpole surface: every successful
// trailer carries a resources block whose numbers are the query's own —
// rows and bytes streamed match what the client received, the scan paid
// buffer fixes, and a parallel plan shows exchange traffic.
func TestTrailerResources(t *testing.T) {
	_, _, ts, _ := newTestServer(t, nil)

	t.Run("serial", func(t *testing.T) {
		res, err := postQuery(ts, "scan emp | filter dept = 2 | sort salary desc")
		if err != nil {
			t.Fatal(err)
		}
		r := res.trailer.Resources
		if r == nil {
			t.Fatal("trailer has no resources block")
		}
		if r.RowsStreamed != int64(res.rows) {
			t.Errorf("rows_streamed = %d, client saw %d rows", r.RowsStreamed, res.rows)
		}
		if r.BytesStreamed <= 0 {
			t.Errorf("bytes_streamed = %d, want > 0", r.BytesStreamed)
		}
		if r.BufferFixes <= 0 {
			t.Errorf("buffer_fixes = %d, want > 0", r.BufferFixes)
		}
		if r.BufferFixes != r.BufferHits+r.BufferMisses {
			t.Errorf("fixes %d != hits %d + misses %d", r.BufferFixes, r.BufferHits, r.BufferMisses)
		}
		if r.CPUSeconds < 0 {
			t.Errorf("cpu_seconds = %v, want >= 0", r.CPUSeconds)
		}
		if r.ExchangePackets != 0 {
			t.Errorf("serial plan shows %d exchange packets, want 0", r.ExchangePackets)
		}
	})

	t.Run("parallel", func(t *testing.T) {
		res, err := postQuery(ts, "pscan emp 4 | exchange producers=4 | agg group dept compute count")
		if err != nil {
			t.Fatal(err)
		}
		r := res.trailer.Resources
		if r == nil {
			t.Fatal("trailer has no resources block")
		}
		if r.ExchangePackets <= 0 || r.ExchangeRecords <= 0 {
			t.Errorf("exchange traffic = %d packets / %d records, want > 0 (producer-side work must attribute)",
				r.ExchangePackets, r.ExchangeRecords)
		}
		if r.ExchangeRecords != empRows {
			t.Errorf("exchange_records = %d, want %d (every scanned row crosses the port)", r.ExchangeRecords, empRows)
		}
	})
}

// TestResourceReconciliation is the attribution soundness check: many
// concurrent queries each get a trailer resources block, and the
// per-query numbers must sum exactly to the process-global
// volcano_server_query_* accumulators those same queries settled into.
// Run under -race this also exercises every meter from multiple
// goroutines at once (producers, consumer, handler). The pool's own
// process-wide counters bound the meters from above: attribution never
// invents a fix the pool didn't perform.
func TestResourceReconciliation(t *testing.T) {
	s, w, ts, _ := newTestServer(t, nil)
	base := w.pool.Stats()

	plans := []string{
		"scan emp | filter dept = 2 | sort salary desc",
		"pscan emp 4 | exchange producers=4 | agg group dept compute count",
		"scan emp | filter id < 100",
	}
	const perPlan = 4
	var mu sync.Mutex
	var got []core.ResourceSnapshot
	var totalRows int64
	var wg sync.WaitGroup
	errs := make(chan error, len(plans)*perPlan)
	for _, p := range plans {
		for i := 0; i < perPlan; i++ {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				res, err := postQuery(ts, p)
				if err != nil {
					errs <- err
					return
				}
				if res.trailer.Status != "ok" || res.trailer.Resources == nil {
					errs <- fmt.Errorf("query %q: status %s, resources %v", p, res.trailer.Status, res.trailer.Resources)
					return
				}
				mu.Lock()
				got = append(got, *res.trailer.Resources)
				totalRows += int64(res.rows)
				mu.Unlock()
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var sum core.ResourceSnapshot
	var cpuNanos int64
	for _, r := range got {
		sum.BufferFixes += r.BufferFixes
		sum.BufferHits += r.BufferHits
		sum.BufferMisses += r.BufferMisses
		sum.DeviceReadBytes += r.DeviceReadBytes
		sum.DeviceWriteBytes += r.DeviceWriteBytes
		sum.RowsStreamed += r.RowsStreamed
		cpuNanos += int64(r.CPUSeconds * 1e9)
		if r.BufferFixes == 0 {
			t.Error("a query attributed zero buffer fixes")
		}
	}

	if v := s.m.queryBufFixes.Load(); v != sum.BufferFixes {
		t.Errorf("volcano_server_query_buffer_fixes_total = %d, per-query sum = %d", v, sum.BufferFixes)
	}
	if v := s.m.queryIOBytes.Load(); v != sum.IOBytes() {
		t.Errorf("volcano_server_query_io_bytes_total = %d, per-query sum = %d", v, sum.IOBytes())
	}
	// CPU settles through the same snapshot the trailer renders; allow
	// one nanosecond of float truncation per query.
	if v := s.m.queryCPUNanos.Load(); v < cpuNanos-int64(len(got)) || v > cpuNanos+int64(len(got)) {
		t.Errorf("volcano_server_query_cpu_seconds_total = %dns, per-query sum = %dns", v, cpuNanos)
	}
	if sum.RowsStreamed != totalRows {
		t.Errorf("rows_streamed sum = %d, clients saw %d", sum.RowsStreamed, totalRows)
	}
	if v := s.m.rowsOK.Value(); v != totalRows {
		t.Errorf("volcano_server_query_rows_total{outcome=ok} = %d, clients saw %d", v, totalRows)
	}

	// Upper bound: the pool performed at least every fix the meters
	// attributed (catalog and metadata fixes are process-global only).
	delta := w.pool.Stats().Sub(base)
	if delta.Fixes < sum.BufferFixes {
		t.Errorf("pool fixes delta %d < attributed sum %d: meters over-count", delta.Fixes, sum.BufferFixes)
	}
}
