package server

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// AdmitError is an admission-control rejection: the query never ran.
// Status is the HTTP status the handler maps it to; Reason the stable
// machine-readable tag that also labels volcano_server_rejected_total.
type AdmitError struct {
	Status int
	Reason string
	msg    string
}

func (e *AdmitError) Error() string { return e.msg }

var (
	// ErrSaturated: the wait queue is full. Clients should back off and
	// retry (429).
	ErrSaturated = &AdmitError{Status: http.StatusTooManyRequests, Reason: "saturated",
		msg: "server: saturated: admission queue full"}
	// ErrDraining: the server is shutting down and admits nothing (503).
	ErrDraining = &AdmitError{Status: http.StatusServiceUnavailable, Reason: "draining",
		msg: "server: draining: not admitting queries"}
	// ErrQueueTimeout: the query waited its whole deadline in the queue
	// without getting a slot (503).
	ErrQueueTimeout = &AdmitError{Status: http.StatusServiceUnavailable, Reason: "queue_timeout",
		msg: "server: queue wait deadline exceeded"}
)

// errTooParallel is built per request: the plan's producer demand can
// never be satisfied by this server's budget, so 400, not 429.
func errTooParallel(weight, budget int) *AdmitError {
	return &AdmitError{Status: http.StatusBadRequest, Reason: "too_parallel",
		msg: fmt.Sprintf("server: plan forks %d producer goroutines, budget is %d", weight, budget)}
}

// governor is the token-based admission controller: a query needs one of
// slots (bounding concurrently executing queries) plus weight producer
// tokens (bounding the total exchange producer goroutines the process
// forks). Requests that cannot be served immediately wait in a bounded
// FIFO; beyond that bound admission fails fast with ErrSaturated.
type governor struct {
	mu        sync.Mutex
	slotsFree int
	prodFree  int
	prodCap   int
	maxQueue  int
	draining  bool
	waiters   *list.List // of *waiter, FIFO

	m *serverMetrics
}

// waiter is one queued admission request. granted/ready are written under
// governor.mu; ready has capacity 1 so grants never block the granter.
type waiter struct {
	weight  int
	granted bool
	ready   chan error
}

func newGovernor(maxConcurrent, maxProducers, maxQueue int, m *serverMetrics) *governor {
	return &governor{
		slotsFree: maxConcurrent,
		prodFree:  maxProducers,
		prodCap:   maxProducers,
		maxQueue:  maxQueue,
		waiters:   list.New(),
		m:         m,
	}
}

// admit blocks until the query holds one slot and weight producer tokens,
// or fails with an *AdmitError / the context's error mapped to
// ErrQueueTimeout. On nil return the caller owns the resources and must
// release(weight) exactly once.
func (g *governor) admit(ctx context.Context, weight int) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return ErrDraining
	}
	if weight > g.prodCap {
		g.mu.Unlock()
		return errTooParallel(weight, g.prodCap)
	}
	// Fast path: resources free and nobody queued ahead of us (FIFO — a
	// light query must not overtake a heavy one that is already waiting).
	if g.waiters.Len() == 0 && g.slotsFree > 0 && g.prodFree >= weight {
		g.slotsFree--
		g.prodFree -= weight
		g.mu.Unlock()
		return nil
	}
	if g.waiters.Len() >= g.maxQueue {
		g.mu.Unlock()
		return ErrSaturated
	}
	w := &waiter{weight: weight, ready: make(chan error, 1)}
	el := g.waiters.PushBack(w)
	g.mu.Unlock()

	g.m.queued.Inc()
	start := time.Now()
	select {
	case err := <-w.ready:
		g.m.queueWait.Observe(time.Since(start))
		return err
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// Lost the race against a grant: the resources are ours, hand
			// them back and wake whoever they now fit.
			g.slotsFree++
			g.prodFree += w.weight
			g.grantLocked()
		} else {
			g.waiters.Remove(el)
		}
		g.mu.Unlock()
		g.m.queueWait.Observe(time.Since(start))
		if err := ctx.Err(); err == context.Canceled {
			return err // client went away; not a server-side rejection
		}
		return ErrQueueTimeout
	}
}

// release returns a query's resources and wakes queued requests they fit.
func (g *governor) release(weight int) {
	g.mu.Lock()
	g.slotsFree++
	g.prodFree += weight
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked admits queued requests in FIFO order while the head fits.
// Head-of-line blocking is deliberate: it keeps heavy queries from
// starving behind a stream of light ones. Callers hold g.mu.
func (g *governor) grantLocked() {
	for g.waiters.Len() > 0 && g.slotsFree > 0 {
		w := g.waiters.Front().Value.(*waiter)
		if g.prodFree < w.weight {
			return
		}
		g.waiters.Remove(g.waiters.Front())
		g.slotsFree--
		g.prodFree -= w.weight
		w.granted = true
		w.ready <- nil
	}
}

// drain stops all admission: queued requests are rejected with
// ErrDraining immediately, future admits fail fast. Executing queries are
// unaffected (the server waits for them separately).
func (g *governor) drain() {
	g.mu.Lock()
	g.draining = true
	for g.waiters.Len() > 0 {
		w := g.waiters.Remove(g.waiters.Front()).(*waiter)
		w.ready <- ErrDraining
	}
	g.mu.Unlock()
}

// queueLen reports how many requests are currently waiting (tests).
func (g *governor) queueLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters.Len()
}
