package server

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
)

// slowLogEntry is one completed query's post-mortem: identity, the
// normalized plan, outcome, lifecycle phase timings, and the final
// per-operator snapshot. It is the JSON schema of both the in-memory
// ring (GET /debug/slowlog) and the file sink (-query-log), and its
// query_id matches the X-Volcano-Query-Id response header and the
// trailer, so logs, traces and client-side records join on one key.
type slowLogEntry struct {
	Time      time.Time        `json:"ts"`
	QueryID   string           `json:"query_id"`
	Plan      string           `json:"plan"`
	Batch     int              `json:"batch"`
	CacheHit  bool             `json:"plan_cache_hit"`
	Outcome   string           `json:"outcome"` // "ok", "error", or "canceled"
	Error     string           `json:"error,omitempty"`
	Rows      int64            `json:"rows"`
	ElapsedMs float64          `json:"elapsed_ms"`
	Phases    phaseMillis      `json:"phases"`
	Operators *plan.OpSnapshot `json:"operators,omitempty"`
	// Resources is the final attributed resource bill, identical to the
	// trailer's resources block for the same query.
	Resources *core.ResourceSnapshot `json:"resources,omitempty"`
}

// slowLog is the structured slow-query log: a bounded in-memory ring of
// the most recent entries plus an optional slog JSON sink (a file, in
// volcano-serve). Recording is per *logged* query — the streaming hot
// path never touches it — so a mutex is plenty.
type slowLog struct {
	mu   sync.Mutex
	ring []slowLogEntry // filled circularly; len(ring) = capacity
	n    int            // entries ever recorded
	lg   *slog.Logger   // nil = ring only
}

// defaultSlowLogCapacity bounds the in-memory ring when the config does
// not say otherwise.
const defaultSlowLogCapacity = 128

func newSlowLog(capacity int, sink io.Writer) *slowLog {
	if capacity <= 0 {
		capacity = defaultSlowLogCapacity
	}
	l := &slowLog{ring: make([]slowLogEntry, capacity)}
	if sink != nil {
		l.lg = slog.New(slog.NewJSONHandler(sink, nil))
	}
	return l
}

// record appends one entry to the ring and, when a sink is attached,
// emits it as one slog JSON line.
func (l *slowLog) record(e slowLogEntry) {
	l.mu.Lock()
	l.ring[l.n%len(l.ring)] = e
	l.n++
	lg := l.lg
	l.mu.Unlock()

	if lg != nil {
		lg.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
			slog.String("query_id", e.QueryID),
			slog.String("plan", e.Plan),
			slog.Int("batch", e.Batch),
			slog.Bool("plan_cache_hit", e.CacheHit),
			slog.String("outcome", e.Outcome),
			slog.String("error", e.Error),
			slog.Int64("rows", e.Rows),
			slog.Float64("elapsed_ms", e.ElapsedMs),
			slog.Any("phases", e.Phases),
			slog.Any("operators", e.Operators),
			slog.Any("resources", e.Resources),
		)
	}
}

// entries returns the retained entries, oldest first.
func (l *slowLog) entries() []slowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.ring)
	kept := l.n
	if kept > size {
		kept = size
	}
	out := make([]slowLogEntry, 0, kept)
	for i := l.n - kept; i < l.n; i++ {
		out = append(out, l.ring[i%size])
	}
	return out
}

// total reports how many entries were ever recorded (tests/metrics).
func (l *slowLog) total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
