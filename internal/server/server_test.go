package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// world is the shared execution fixture: one buffer pool, one catalog
// volume, one temp volume — exactly what a volcano-serve process shares
// across every query it admits.
type world struct {
	pool *buffer.Pool
	env  *core.Env
	cat  plan.Catalog
}

const (
	empRows   = 300
	empDepts  = 8
	empParts  = 4
	pairRows  = 2000
	pairKeys  = 4
	deptRows  = empDepts
	crossRows = pairKeys * (pairRows / pairKeys) * (pairRows / pairKeys) // join pairs⨝pairs2 on key
)

// newWorld builds the fixture tables:
//
//	emp(id:int, dept:int, salary:float, name:string), also partitioned
//	  into emp.0..emp.3 for pscan
//	dept(dno:int, budget:float)
//	pairs(a:int, b:int), pairs2(c:int, d:int) — a and c skewed over
//	  pairKeys values, so pairs ⨝ pairs2 explodes to crossRows rows: the
//	  "heavy" query the saturation and disconnect tests lean on.
func newWorld(t testing.TB) *world {
	t.Helper()
	reg := device.NewRegistry()
	baseID := reg.NextID()
	if err := reg.Mount(device.NewMem(baseID)); err != nil {
		t.Fatal(err)
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.CloseAll() })
	pool := buffer.NewPool(reg, 1024, buffer.TwoLevel)
	vol := file.NewVolume(pool, baseID)

	empSchema := record.MustSchema(
		record.Field{Name: "id", Type: record.TInt},
		record.Field{Name: "dept", Type: record.TInt},
		record.Field{Name: "salary", Type: record.TFloat},
		record.Field{Name: "name", Type: record.TString},
	)
	emp := mustCreate(t, vol, "emp", empSchema)
	parts := make([]*file.File, empParts)
	for p := range parts {
		parts[p] = mustCreate(t, vol, fmt.Sprintf("emp.%d", p), empSchema)
	}
	for i := 0; i < empRows; i++ {
		data := empSchema.MustEncode(
			record.Int(int64(i)),
			record.Int(int64(i%empDepts)),
			record.Float(1000+float64(i%50)*10),
			record.Str(fmt.Sprintf("emp-%d", i)),
		)
		mustInsert(t, emp, data)
		mustInsert(t, parts[i%empParts], data)
	}

	deptSchema := record.MustSchema(
		record.Field{Name: "dno", Type: record.TInt},
		record.Field{Name: "budget", Type: record.TFloat},
	)
	dept := mustCreate(t, vol, "dept", deptSchema)
	for i := 0; i < deptRows; i++ {
		mustInsert(t, dept, deptSchema.MustEncode(record.Int(int64(i)), record.Float(float64(100*i))))
	}

	pairSchema := record.MustSchema(
		record.Field{Name: "a", Type: record.TInt},
		record.Field{Name: "b", Type: record.TInt},
	)
	pair2Schema := record.MustSchema(
		record.Field{Name: "c", Type: record.TInt},
		record.Field{Name: "d", Type: record.TInt},
	)
	pairs := mustCreate(t, vol, "pairs", pairSchema)
	pairs2 := mustCreate(t, vol, "pairs2", pair2Schema)
	for i := 0; i < pairRows; i++ {
		mustInsert(t, pairs, pairSchema.MustEncode(record.Int(int64(i%pairKeys)), record.Int(int64(i))))
		mustInsert(t, pairs2, pair2Schema.MustEncode(record.Int(int64(i%pairKeys)), record.Int(int64(i))))
	}

	return &world{
		pool: pool,
		env:  core.NewEnv(pool, file.NewVolume(pool, tempID)),
		cat:  plan.VolumeCatalog{vol},
	}
}

func mustCreate(t testing.TB, vol *file.Volume, name string, s *record.Schema) *file.File {
	t.Helper()
	f, err := vol.Create(name, s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustInsert(t testing.TB, f *file.File, data []byte) {
	t.Helper()
	if _, err := f.Insert(data); err != nil {
		t.Fatal(err)
	}
}

// heavyQuery produces crossRows (≈2M) result rows — megabytes of NDJSON,
// far beyond the kernel socket buffers, so a client that does not read
// the body wedges the handler in Write for as long as the test needs.
const heavyQuery = "with p2 = scan pairs2\nscan pairs | join hash p2 on a = c"

// newTestServer wires a Server over a fresh world onto an httptest
// listener. The mutate callback adjusts the config before New.
func newTestServer(t testing.TB, mutate func(*Config)) (*Server, *world, *httptest.Server, *metrics.Registry) {
	t.Helper()
	w := newWorld(t)
	mr := metrics.NewRegistry()
	cfg := Config{
		Env:            w.env,
		Catalog:        w.cat,
		CatalogVersion: "test-v1",
		Metrics:        mr,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, w, ts, mr
}

// queryResult is a fully read streamed response.
type queryResult struct {
	status  int
	rows    int
	trailer trailer
	body    string
}

// postQuery runs one plan script and reads the whole NDJSON stream,
// checking that every line is valid JSON and exactly one trailer
// terminates the body.
func postQuery(ts *httptest.Server, script string) (queryResult, error) {
	return postQueryBatch(ts, script, "")
}

// postQueryBatch is postQuery with an X-Volcano-Batch header ("" = none).
func postQueryBatch(ts *httptest.Server, script, batch string) (queryResult, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(script))
	if err != nil {
		return queryResult{}, err
	}
	req.Header.Set("Content-Type", "text/plain")
	if batch != "" {
		req.Header.Set("X-Volcano-Batch", batch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return queryResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return queryResult{}, err
	}
	res := queryResult{status: resp.StatusCode, body: string(body)}
	if resp.StatusCode != http.StatusOK {
		return res, nil
	}
	sc := bufio.NewScanner(strings.NewReader(res.body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last string
	for sc.Scan() {
		line := sc.Text()
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			return res, fmt.Errorf("invalid NDJSON line %q: %w", line, err)
		}
		if last != "" {
			res.rows++
		}
		last = line
	}
	if last == "" {
		return res, fmt.Errorf("empty response body")
	}
	if err := json.Unmarshal([]byte(last), &res.trailer); err != nil || res.trailer.Status == "" {
		return res, fmt.Errorf("missing trailer, last line %q", last)
	}
	if int64(res.rows) != res.trailer.Rows {
		return res, fmt.Errorf("trailer says %d rows, body has %d", res.trailer.Rows, res.rows)
	}
	return res, nil
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestConcurrentQueriesSharedPool is the acceptance test of the issue:
// many concurrent streamed queries of different shapes — serial scans,
// parallel pscan/exchange plans, hash joins, aggregation — over ONE
// shared buffer pool and volume, under the race detector. Afterwards the
// pool must hold zero pinned frames and the process must be back to its
// goroutine baseline: no producer, daemon, or handler leaked.
func TestConcurrentQueriesSharedPool(t *testing.T) {
	s, w, ts, mr := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 10
		c.MaxProducers = 64
	})
	_ = s

	// Row counts depend on the generator loops; compute them rather than
	// hard-coding modular arithmetic.
	dept2, salaried := 0, 0
	for i := 0; i < empRows; i++ {
		if i%empDepts == 2 {
			dept2++
		}
		if 1000+float64(i%50)*10 > 1200 {
			salaried++
		}
	}
	cases := []struct {
		script string
		rows   int
	}{
		{"scan emp | filter dept = 2 | sort salary desc", dept2},
		{"pscan emp 4 | exchange producers=4 | agg group dept compute count", empDepts},
		{"scan emp | project name, salary * 1.1 as raised", empRows},
		{"with d = scan dept\nscan emp | join hash d on dept = dno", empRows},
		{"scan emp | agg group dept compute count, sum(salary)", empDepts},
		{"pscan emp 4 | exchange producers=4 packet=7", empRows},
		{"scan emp | filter salary > 1200 | project id", salaried},
		{"pscan emp 4 | exchange producers=4 flow=on slack=2 | sort id", empRows},
	}

	baseline := runtime.NumGoroutine()
	const rounds = 3 // every query shape runs 3×, so 24 streams total
	errs := make(chan error, rounds*len(cases))
	for r := 0; r < rounds; r++ {
		for _, c := range cases {
			c := c
			go func() {
				res, err := postQuery(ts, c.script)
				if err == nil {
					if res.status != http.StatusOK {
						err = fmt.Errorf("%q: status %d: %s", c.script, res.status, res.body)
					} else if res.trailer.Status != "ok" {
						err = fmt.Errorf("%q: trailer %+v", c.script, res.trailer)
					} else if res.rows != c.rows {
						err = fmt.Errorf("%q: %d rows, want %d", c.script, res.rows, c.rows)
					}
				}
				errs <- err
			}()
		}
	}
	for i := 0; i < rounds*len(cases); i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}

	if got := w.pool.Stats().CurrentlyFixedHint; got != 0 {
		t.Errorf("pinned frames after all queries done: %d, want 0", got)
	}
	// postQuery rides http.DefaultClient; park its keep-alive connections
	// so the server side's per-connection goroutines can exit too.
	http.DefaultClient.CloseIdleConnections()
	ts.Client().CloseIdleConnections()
	waitFor(t, 10*time.Second, "goroutines to return to baseline", func() bool {
		return runtime.NumGoroutine() <= baseline+4
	})

	// Every shape ran 3×: the first execution compiles, the rest must hit
	// the plan cache.
	hits := mr.Counter("volcano_server_plan_cache_hits_total", "").Value()
	misses := mr.Counter("volcano_server_plan_cache_misses_total", "").Value()
	if want := int64(len(cases) * (rounds - 1)); hits < want {
		t.Errorf("plan cache hits = %d, want >= %d (misses %d)", hits, want, misses)
	}
}

// TestPlanCacheNormalization checks that textual variants of one query —
// comments, stage line breaks, extra blank lines — share a cache entry,
// and that a catalog version bump would not (cache key includes it).
func TestPlanCacheNormalization(t *testing.T) {
	_, _, ts, mr := newTestServer(t, nil)
	hits := mr.Counter("volcano_server_plan_cache_hits_total", "")

	variants := []string{
		"scan emp | filter dept = 2",
		"scan emp\n| filter dept = 2",
		"# comment\nscan emp   | filter dept = 2  # trailing",
		"\n\nscan emp\n  | filter dept = 2\n",
	}
	for i, v := range variants {
		res, err := postQuery(ts, v)
		if err != nil || res.status != http.StatusOK {
			t.Fatalf("variant %d: %v status %d", i, err, res.status)
		}
	}
	if got := hits.Value(); got != int64(len(variants)-1) {
		t.Errorf("cache hits = %d, want %d (all variants normalize alike)", got, len(variants)-1)
	}
}

// TestSetCatalogVersionPurgesStalePlans covers the catalog-swap path:
// bumping the version frees every stale template immediately (they
// could never hit again — their keys embed the old version — but they
// would otherwise squat on LRU capacity), records the purge in the
// invalidation counter, and re-keys subsequent lookups so the same
// script recompiles once under the new version.
func TestSetCatalogVersionPurgesStalePlans(t *testing.T) {
	s, _, ts, mr := newTestServer(t, nil)
	misses := mr.Counter("volcano_server_plan_cache_misses_total", "")
	invalid := mr.Counter("volcano_server_plan_cache_invalidations_total", "")

	scripts := []string{"scan emp", "scan emp | filter dept = 2", "scan dept"}
	for _, q := range scripts {
		if res, err := postQuery(ts, q); err != nil || res.status != http.StatusOK {
			t.Fatalf("%q: %v status %d", q, err, res.status)
		}
	}
	if got := s.cache.len(); got != len(scripts) {
		t.Fatalf("cache holds %d templates, want %d", got, len(scripts))
	}

	s.SetCatalogVersion("test-v2")
	if got := s.cache.len(); got != 0 {
		t.Fatalf("cache holds %d templates after version bump, want 0", got)
	}
	if got := invalid.Value(); got != int64(len(scripts)) {
		t.Fatalf("invalidation counter = %d, want %d", got, len(scripts))
	}

	// Same text, new version: a miss (recompile), then a hit.
	missesBefore := misses.Value()
	for i := 0; i < 2; i++ {
		if res, err := postQuery(ts, scripts[0]); err != nil || res.status != http.StatusOK {
			t.Fatalf("rerun %d: %v status %d", i, err, res.status)
		}
	}
	if got := misses.Value() - missesBefore; got != 1 {
		t.Fatalf("misses after bump = %d, want exactly 1 (recompile once, then hit)", got)
	}

	// Bumping to the version already set purges nothing.
	s.SetCatalogVersion("test-v2")
	if got := s.cache.len(); got != 1 {
		t.Fatalf("same-version bump purged the cache (len %d, want 1)", got)
	}
}

// TestParseErrorsReturn400 pins the 400 path: the body must carry the
// parser's line/stage positions so clients can fix their scripts.
func TestParseErrorsReturn400(t *testing.T) {
	_, _, ts, _ := newTestServer(t, nil)

	res, err := postQuery(ts, "scan emp\n| filter dept = 2\n| projct name")
	if err != nil {
		t.Fatal(err)
	}
	if res.status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", res.status)
	}
	if !strings.Contains(res.body, "line 3, stage 3") || !strings.Contains(res.body, "projct") {
		t.Errorf("400 body lacks position info: %q", res.body)
	}

	// Unknown table: parses, fails at build time, still a 400.
	res, err = postQuery(ts, "scan nosuch")
	if err != nil {
		t.Fatal(err)
	}
	if res.status != http.StatusBadRequest {
		t.Errorf("unknown table: status = %d, want 400: %s", res.status, res.body)
	}

	// A plan demanding more producers than the server budget: 400, not 429.
	res, err = postQuery(ts, "scan emp | exchange producers=500")
	if err != nil {
		t.Fatal(err)
	}
	if res.status != http.StatusBadRequest {
		t.Errorf("too-parallel plan: status = %d, want 400: %s", res.status, res.body)
	}
}

// TestSaturation429AndQueueWait drives the server into saturation with a
// wedged heavy query (the client never reads, so TCP backpressure parks
// the handler mid-stream), fills the wait queue, and asserts the
// acceptance criteria: the overflow query gets 429, the queue-wait
// histogram is non-empty, and a /metrics scrape taken in that state
// parses cleanly and contains the volcano_server_* families.
func TestSaturation429AndQueueWait(t *testing.T) {
	s, _, ts, mr := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
		c.QueueWait = 30 * time.Second
	})
	inFlight := mr.Gauge("volcano_server_in_flight", "")

	// Query A: admitted, then wedged writing to a client that won't read.
	respA, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(heavyQuery))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "query A in flight", func() bool { return inFlight.Value() == 1 })

	// Query B: queues behind A.
	bDone := make(chan queryResult, 1)
	go func() {
		res, err := postQuery(ts, "scan emp | filter dept = 1")
		if err != nil {
			res.body = err.Error()
		}
		bDone <- res
	}()
	waitFor(t, 10*time.Second, "query B queued", func() bool { return s.gov.queueLen() == 1 })

	// Query C: queue full now — must bounce with 429 immediately.
	res, err := postQuery(ts, "scan emp")
	if err != nil {
		t.Fatal(err)
	}
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("overflow query: status = %d, want 429: %s", res.status, res.body)
	}

	// Scrape while saturated: the exposition must parse and carry the
	// server families.
	scrape, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	families, err := metrics.ParseText(scrape.Body)
	scrape.Body.Close()
	if err != nil {
		t.Fatalf("mid-saturation scrape does not parse: %v", err)
	}
	for _, f := range []string{
		"volcano_server_in_flight",
		"volcano_server_rejected_total",
		"volcano_server_queue_wait_seconds",
		"volcano_server_admitted_total",
	} {
		if families[f] == 0 {
			t.Errorf("scrape missing family %s", f)
		}
	}

	// Release A: closing the response tears its connection down, the
	// request context cancels, and the Done channel aborts the exchange-
	// less plan via the per-row check. B must then be admitted and finish.
	respA.Body.Close()
	resB := <-bDone
	if resB.status != http.StatusOK || resB.trailer.Status != "ok" {
		t.Fatalf("queued query after release: status %d trailer %+v body %s", resB.status, resB.trailer, resB.body)
	}
	wantB := 0
	for i := 0; i < empRows; i++ {
		if i%empDepts == 1 {
			wantB++
		}
	}
	if resB.rows != wantB {
		t.Errorf("queued query rows = %d, want %d", resB.rows, wantB)
	}

	if got := mr.Counter("volcano_server_rejected_total", "", metrics.Label{Key: "reason", Value: "saturated"}).Value(); got != 1 {
		t.Errorf("rejected{saturated} = %d, want 1", got)
	}
	if got := mr.Histogram("volcano_server_queue_wait_seconds", "", nil).Count(); got < 1 {
		t.Errorf("queue-wait histogram count = %d, want >= 1", got)
	}
	if got := mr.Counter("volcano_server_canceled_total", "").Value(); got < 1 {
		t.Errorf("canceled counter = %d, want >= 1 (query A was abandoned)", got)
	}
}

// TestDrainFinishesInFlight pins graceful shutdown: Drain stops admission
// (healthz flips to 503, new queries bounce) but the in-flight query runs
// to completion with an intact trailer before Drain returns.
func TestDrainFinishesInFlight(t *testing.T) {
	s, w, ts, mr := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 2
	})
	inFlight := mr.Gauge("volcano_server_in_flight", "")

	// The cross join grinds through ~1M intermediate rows but aggregates
	// them down to pairKeys result rows: long enough to overlap Drain,
	// cheap enough to stream.
	slowQuery := "with p2 = scan pairs2 | filter d < 500\nscan pairs | join hash p2 on a = c | agg group a compute count"
	aDone := make(chan queryResult, 1)
	go func() {
		res, err := postQuery(ts, slowQuery) // reads everything: finishes on its own
		if err != nil {
			res.body = err.Error()
		}
		aDone <- res
	}()
	waitFor(t, 10*time.Second, "heavy query in flight", func() bool { return inFlight.Value() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(contextWithTimeout(t, 60*time.Second)) }()
	waitFor(t, 5*time.Second, "server draining", func() bool { return s.life.isDraining() })

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hz.StatusCode)
	}
	res, err := postQuery(ts, "scan emp")
	if err != nil {
		t.Fatal(err)
	}
	if res.status != http.StatusServiceUnavailable {
		t.Errorf("query while draining = %d, want 503: %s", res.status, res.body)
	}

	resA := <-aDone
	if resA.status != http.StatusOK || resA.trailer.Status != "ok" || resA.rows != pairKeys {
		t.Fatalf("in-flight query under drain: status %d rows %d trailer %+v", resA.status, resA.rows, resA.trailer)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := w.pool.Stats().CurrentlyFixedHint; got != 0 {
		t.Errorf("pinned frames after drain: %d, want 0", got)
	}
}

func contextWithTimeout(t testing.TB, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
