package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/plan"
)

// debugQueriesPage mirrors the /debug/queries wire shape for tests.
type debugQueriesPage struct {
	Active  int           `json:"active"`
	Queries []queryStatus `json:"queries"`
}

func getDebugQueries(t testing.TB, url string) debugQueriesPage {
	t.Helper()
	resp, err := http.Get(url + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries status %d", resp.StatusCode)
	}
	var page debugQueriesPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("/debug/queries body: %v", err)
	}
	return page
}

// opRows sums Rows over an operator snapshot subtree whose description
// starts with the given prefix (e.g. "pscan", "exchange").
func opRows(s *queryStatus, prefix string) int64 {
	if s.Operators == nil {
		return 0
	}
	var total int64
	var visit func(op *plan.OpSnapshot)
	visit = func(op *plan.OpSnapshot) {
		if strings.HasPrefix(op.Op, prefix) {
			total += op.Stats.Rows
		}
		for i := range op.Inputs {
			visit(&op.Inputs[i])
		}
	}
	visit(s.Operators)
	return total
}

// TestDebugQueriesLiveScrape is the issue's race test: while a slow
// multi-producer query streams (four pscan partitions behind a
// flow-controlled exchange, joined wide), /debug/queries is scraped
// repeatedly — live OpStats snapshots racing the operator goroutines
// that update them. Run under -race this proves the registry's live view
// is data-race-free; the assertions prove it is *live*: the query
// appears under its client-chosen ID with row progress both client-side
// (rows) and operator-side (nonzero pscan rows under the exchange).
func TestDebugQueriesLiveScrape(t *testing.T) {
	_, _, ts, _ := newTestServer(t, func(c *Config) {
		c.FlushEvery = 8
	})

	// emp rows with dept < pairKeys fan out 500× through the hash join:
	// ~75k result rows, produced by 4 exchange producers that keep
	// running (flow control, slack 1) while the consumer streams.
	script := "with p2 = scan pairs2\npscan emp 4 | exchange producers=4 flow=on slack=1 | join hash p2 on dept = c"
	const qid = "live-scrape-test"

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Volcano-Query-Id", qid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Volcano-Query-Id"); got != qid {
		t.Fatalf("X-Volcano-Query-Id echoed %q, want %q", got, qid)
	}

	// Interleave slow body reads with debug scrapes until a scrape has
	// seen the query live with progress on both sides of the exchange.
	var sawLive, sawOpRows bool
	buf := make([]byte, 4<<10)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			break // stream ended (EOF mid-fill): drain is done
		}
		page := getDebugQueries(t, ts.URL)
		for i := range page.Queries {
			q := &page.Queries[i]
			if q.QueryID != qid {
				continue
			}
			if q.State == "streaming" && q.Rows > 0 {
				sawLive = true
			}
			if opRows(q, "pscan") > 0 && opRows(q, "exchange") > 0 {
				sawOpRows = true
			}
			if q.Plan == "" || q.StartedAt.IsZero() || q.ElapsedMs <= 0 {
				t.Errorf("live record incomplete: %+v", q)
			}
		}
		if sawLive && sawOpRows {
			break
		}
	}
	if !sawLive || !sawOpRows {
		t.Fatalf("never saw the query live on /debug/queries (live=%v opRows=%v)", sawLive, sawOpRows)
	}

	// Drill-down while still streaming: the same tree EXPLAIN ANALYZE
	// prints, mid-flight, prefixed with the query identity.
	drill, err := http.Get(ts.URL + "/debug/queries/" + qid)
	if err != nil {
		t.Fatal(err)
	}
	if drill.StatusCode == http.StatusOK {
		var one queryStatus
		if err := json.NewDecoder(drill.Body).Decode(&one); err != nil {
			t.Fatalf("drill-down body: %v", err)
		}
		if !strings.Contains(one.Analyze, "query "+qid) || !strings.Contains(one.Analyze, "exchange") {
			t.Errorf("drill-down analyze lacks identity or tree:\n%s", one.Analyze)
		}
	}
	drill.Body.Close()

	// Drain the rest; afterwards the registry must be empty again.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatalf("draining stream: %v", err)
	}
	waitFor(t, 10*time.Second, "registry to empty", func() bool {
		return getDebugQueries(t, ts.URL).Active == 0
	})

	// The finished query must 404 on the drill-down now.
	gone, err := http.Get(ts.URL + "/debug/queries/" + qid)
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Errorf("finished query drill-down status %d, want 404", gone.StatusCode)
	}
}

// TestRegistryHotPathZeroAlloc is the bench guard: the registry's entire
// per-record footprint on the streaming hot path is rec.addRows — one
// atomic add that must never allocate. Registration, state transitions
// and snapshots are per-query and may allocate freely; this pins the
// only thing that scales with row count.
func TestRegistryHotPathZeroAlloc(t *testing.T) {
	rec := &queryRecord{id: "alloc-guard", started: time.Now()}
	reg := newRegistry(newServerMetrics(nil))
	if err := reg.add(rec); err != nil {
		t.Fatal(err)
	}
	defer reg.remove(rec.id)

	if allocs := testing.AllocsPerRun(1000, func() {
		rec.addRows(1)
	}); allocs != 0 {
		t.Fatalf("registry hot path allocates %.1f per record, want 0", allocs)
	}
}

// TestQueryIDAssignment pins the identity contract: generated IDs are
// echoed and unique, client IDs are honored, malformed ones are 400 with
// the uniform trailer-shaped error object, and a duplicate active ID is
// refused with 409.
func TestQueryIDAssignment(t *testing.T) {
	_, _, ts, _ := newTestServer(t, nil)

	// Generated: present on header and in the trailer, distinct per query.
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("scan dept"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Volcano-Query-Id")
		if id == "" || seen[id] {
			t.Fatalf("generated id %q (seen=%v)", id, seen[id])
		}
		seen[id] = true
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		var tr trailer
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil {
			t.Fatal(err)
		}
		if tr.QueryID != id {
			t.Errorf("trailer query_id %q != header %q", tr.QueryID, id)
		}
		if tr.ElapsedMs <= 0 || tr.Phases == nil {
			t.Errorf("trailer lacks timing: %+v", tr)
		}
	}

	// Malformed: 400, trailer-shaped JSON body.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader("scan dept"))
	req.Header.Set("X-Volcano-Query-Id", "no spaces allowed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d, want 400", resp.StatusCode)
	}
	var tr trailer
	if err := json.Unmarshal(body, &tr); err != nil || tr.Status != "error" {
		t.Fatalf("malformed-id body is not a status object: %q (%v)", body, err)
	}

	// Duplicate: wedge a heavy query under an explicit ID, then reuse it.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(heavyQuery))
	req.Header.Set("X-Volcano-Query-Id", "dup-1")
	wedged, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Body.Close()

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader("scan dept"))
	req.Header.Set("X-Volcano-Query-Id", "dup-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: status %d, want 409", resp.StatusCode)
	}
}

// TestAnalyzeHeader pins the X-Volcano-Analyze contract: "1" embeds this
// run's EXPLAIN ANALYZE text in the trailer, absence leaves it out, and
// a malformed value is a 400 (mirroring X-Volcano-Batch).
func TestAnalyzeHeader(t *testing.T) {
	_, _, ts, _ := newTestServer(t, nil)

	post := func(analyze string) (*http.Response, trailer, error) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query",
			strings.NewReader("scan emp | filter dept = 2 | sort salary desc"))
		if analyze != "" {
			req.Header.Set("X-Volcano-Analyze", analyze)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, trailer{}, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		var tr trailer
		err = json.Unmarshal([]byte(lines[len(lines)-1]), &tr)
		return resp, tr, err
	}

	resp, tr, err := post("1")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze query: %v status %d", err, resp.StatusCode)
	}
	for _, want := range []string{"sort", "filter", "scan emp", "rows=", "buffer:"} {
		if !strings.Contains(tr.Analyze, want) {
			t.Errorf("analyze text lacks %q:\n%s", want, tr.Analyze)
		}
	}
	if !strings.Contains(tr.Analyze, "query "+tr.QueryID) {
		t.Errorf("analyze text lacks query identity:\n%s", tr.Analyze)
	}

	resp, tr, err = post("")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("plain query: %v status %d", err, resp.StatusCode)
	}
	if tr.Analyze != "" {
		t.Errorf("analyze embedded without the header:\n%s", tr.Analyze)
	}

	resp, _, _ = post("yes-please")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed X-Volcano-Analyze: status %d, want 400", resp.StatusCode)
	}
}

// TestPhaseMetricsAndRowOutcomes checks the new lifecycle families: all
// four phase histograms observe, and rows land in the outcome-labelled
// counter.
func TestPhaseMetricsAndRowOutcomes(t *testing.T) {
	_, _, ts, mr := newTestServer(t, nil)

	res, err := postQuery(ts, "scan emp | filter dept = 2")
	if err != nil || res.status != http.StatusOK {
		t.Fatalf("query: %v status %d", err, res.status)
	}
	for _, phase := range []string{"plan", "queued", "execute", "stream"} {
		h := mr.Histogram("volcano_server_query_phase_seconds", "", nil,
			metrics.Label{Key: "phase", Value: phase})
		if h.Count() < 1 {
			t.Errorf("phase %s histogram count = %d, want >= 1", phase, h.Count())
		}
	}
	if got := mr.Counter("volcano_server_query_rows_total", "",
		metrics.Label{Key: "outcome", Value: "ok"}).Value(); got != int64(res.rows) {
		t.Errorf("query_rows_total{ok} = %d, want %d", got, res.rows)
	}
	if got := mr.Gauge("volcano_server_queries_active", "").Value(); got != 0 {
		t.Errorf("queries_active after completion = %d, want 0", got)
	}
}
