package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// lockedBuffer is a concurrency-safe bytes.Buffer: the slow-log sink is
// written from handler goroutines while the test polls it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// normalizeSlowLog strips the volatile parts of one slog JSON line —
// wall-clock timestamps and every duration — leaving the stable schema:
// identity, plan, outcome, row counts, operator tree shape. Keys are
// zeroed rather than dropped, so the golden file still pins that every
// timing field exists.
func normalizeSlowLog(t *testing.T, line []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("slow-log line is not JSON: %v\n%s", err, line)
	}
	var scrub func(m map[string]any)
	scrub = func(m map[string]any) {
		for k, v := range m {
			switch {
			case k == "time" || k == "ts":
				m[k] = "SCRUBBED"
			case strings.HasSuffix(k, "_ms") || strings.HasSuffix(k, "_ns"):
				m[k] = 0
			case k == "cpu_seconds":
				// Wall-derived like the _ns fields; zeroed, so the golden
				// still pins that the resources block carries the key.
				m[k] = 0
			}
			switch vv := v.(type) {
			case map[string]any:
				scrub(vv)
			case []any:
				for _, e := range vv {
					if em, ok := e.(map[string]any); ok {
						scrub(em)
					}
				}
			}
		}
	}
	scrub(m)
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestSlowLogGolden pins the slow-query log schema end to end: a server
// with a 1ns threshold logs every completed query to the slog sink, and
// the normalized JSON line — identity, normalized plan, outcome, phase
// keys, the whole per-operator snapshot — must match the golden file.
// The fixture tables are deterministic, so everything except wall-clock
// values is byte-stable.
func TestSlowLogGolden(t *testing.T) {
	sink := &lockedBuffer{}
	_, _, ts, _ := newTestServer(t, func(c *Config) {
		c.SlowQuery = time.Nanosecond
		c.SlowLogSink = sink
	})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query",
		strings.NewReader("scan emp | filter dept = 2 | sort salary desc"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Volcano-Query-Id", "golden-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	// The sink write races the client seeing the response end; poll.
	waitFor(t, 5*time.Second, "slow-log sink line", func() bool {
		return strings.Contains(sink.String(), "golden-1")
	})
	line := []byte(strings.SplitN(strings.TrimSpace(sink.String()), "\n", 2)[0])
	got := normalizeSlowLog(t, line)

	goldenPath := filepath.Join("testdata", "slowlog.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("slow-log entry drifted from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The same entry is retained on the in-memory ring with the same ID.
	dresp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var page struct {
		Total   int            `json:"total"`
		Entries []slowLogEntry `json:"entries"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Entries) != 1 {
		t.Fatalf("/debug/slowlog total=%d entries=%d, want 1/1", page.Total, len(page.Entries))
	}
	e := page.Entries[0]
	if e.QueryID != "golden-1" || e.Outcome != "ok" || e.Operators == nil {
		t.Errorf("ring entry = %+v, want golden-1/ok with operators", e)
	}
}

// TestSlowLogErrorsAlwaysLogged pins the outcome triggers at threshold
// zero: fast successful queries stay out of the log, canceled ones land
// in it regardless of duration, carrying the final operator snapshot and
// the ID-stamped error.
func TestSlowLogErrorsAlwaysLogged(t *testing.T) {
	srv, _, ts, mr := newTestServer(t, func(c *Config) {
		c.SlowQuery = 0 // only errors/cancels
	})

	if res, err := postQuery(ts, "scan dept"); err != nil || res.status != http.StatusOK {
		t.Fatalf("ok query: %v status %d", err, res.status)
	}
	if n := srv.slow.total(); n != 0 {
		t.Fatalf("ok query logged at threshold 0: total=%d", n)
	}

	// Cancel mid-stream: read a little, then slam the connection shut.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(heavyQuery))
	req.Header.Set("X-Volcano-Query-Id", "cancel-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(resp.Body, make([]byte, 16<<10)); err != nil {
		t.Fatalf("priming stream: %v", err)
	}
	resp.Body.Close()

	waitFor(t, 10*time.Second, "canceled query in slow log", func() bool {
		return srv.slow.total() >= 1
	})
	entries := srv.slow.entries()
	e := entries[len(entries)-1]
	if e.QueryID != "cancel-me" || e.Outcome != "canceled" {
		t.Fatalf("entry = %s/%s, want cancel-me/canceled", e.QueryID, e.Outcome)
	}
	if !strings.Contains(e.Error, "query cancel-me:") {
		t.Errorf("error not stamped with the query ID: %q", e.Error)
	}
	if e.Operators == nil || e.Rows == 0 {
		t.Errorf("canceled entry lacks progress: rows=%d operators=%v", e.Rows, e.Operators)
	}
	if got := mr.Counter("volcano_server_slow_queries_total", "").Value(); got != 1 {
		t.Errorf("slow_queries_total = %d, want 1", got)
	}
	if got := mr.Counter("volcano_server_query_rows_total", "",
		metrics.Label{Key: "outcome", Value: "canceled"}).Value(); got != e.Rows {
		t.Errorf("query_rows_total{canceled} = %d, want %d", got, e.Rows)
	}
}

// TestSlowLogRingBound pins the ring semantics: capacity bounds what is
// retained, total keeps counting, order stays oldest-first.
func TestSlowLogRingBound(t *testing.T) {
	l := newSlowLog(2, nil)
	for i := 0; i < 5; i++ {
		l.record(slowLogEntry{QueryID: fmt.Sprintf("q%d", i)})
	}
	if l.total() != 5 {
		t.Fatalf("total = %d, want 5", l.total())
	}
	got := l.entries()
	if len(got) != 2 || got[0].QueryID != "q3" || got[1].QueryID != "q4" {
		t.Fatalf("entries = %+v, want [q3 q4]", got)
	}
}
