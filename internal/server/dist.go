package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/dist"
)

// handleDistRegister serves POST /dist/register: a volcano-worker
// announces (or re-announces) the address the coordinator should
// dispatch fragments to and health-check. Registration is idempotent,
// so workers repeat it periodically as a liveness refresher.
func (s *Server) handleDistRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a worker registration", http.StatusMethodNotAllowed)
		return
	}
	var req dist.RegisterRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<10)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("server: bad register request: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.cfg.Dist.Register(req.Addr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleDebugWorkers serves GET /debug/workers: the registered fleet
// with liveness and per-worker dispatch counts.
func (s *Server) handleDebugWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET the worker fleet", http.StatusMethodNotAllowed)
		return
	}
	workers := s.cfg.Dist.Workers()
	live := 0
	for _, wk := range workers {
		if wk.Live {
			live++
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Workers []dist.WorkerInfo `json:"workers"`
		Live    int               `json:"live"`
		Data    string            `json:"data_addr"`
	}{Workers: workers, Live: live, Data: s.cfg.Dist.DataAddr()})
}
