package server

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestMidStreamDisconnectStress is the abandonment stress test: clients
// start heavy parallel queries, read a little of the stream, and hang up.
// Each disconnect cancels the request context, which closes the plan's
// Done channel; exchange producers abandon their subtrees between records
// and the Close handshake (the shutdown machinery) reaps them. After
// every wave the shared pool must be pin-balanced and the process back at
// its goroutine baseline — nothing may survive an abandoned query.
func TestMidStreamDisconnectStress(t *testing.T) {
	s, w, ts, mr := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 6
		c.MaxProducers = 32
	})
	_ = s

	// The cross join under a non-partitioned exchange: each producer runs
	// its own copy of the join, so this streams ~2M rows through the full
	// producer/consumer protocol — no client reads more than a few KB.
	const q = "with p2 = scan pairs2\nscan pairs | join hash p2 on a = c | exchange producers=2 packet=7 flow=on slack=2"

	client := &http.Client{}
	baseline := runtime.NumGoroutine()
	const waves, perWave = 3, 4
	for wave := 0; wave < waves; wave++ {
		errs := make(chan error, perWave)
		for i := 0; i < perWave; i++ {
			go func() {
				resp, err := client.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
				if err != nil {
					errs <- err
					return
				}
				// Read a slice of the stream mid-flight, then vanish.
				_, err = io.ReadAtLeast(resp.Body, make([]byte, 8<<10), 8<<10)
				resp.Body.Close()
				errs <- err
			}()
		}
		for i := 0; i < perWave; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("wave %d: %v", wave, err)
			}
		}
		// The handlers notice the hangup asynchronously; wait for the
		// server to report idle before checking invariants.
		inFlight := mr.Gauge("volcano_server_in_flight", "")
		waitFor(t, 20*time.Second, "abandoned queries to tear down", func() bool {
			return inFlight.Value() == 0
		})
		if got := w.pool.Stats().CurrentlyFixedHint; got != 0 {
			t.Fatalf("wave %d: pinned frames after teardown: %d, want 0", wave, got)
		}
	}

	if got := mr.Counter("volcano_server_canceled_total", "").Value(); got != waves*perWave {
		t.Errorf("canceled counter = %d, want %d", got, waves*perWave)
	}
	client.CloseIdleConnections()
	waitFor(t, 10*time.Second, "goroutines to return to baseline", func() bool {
		return runtime.NumGoroutine() <= baseline+4
	})
}
