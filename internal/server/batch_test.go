package server

import (
	"net/http"
	"sort"
	"strings"
	"testing"
)

// splitRows returns the response's data lines (everything but the
// trailer) sorted, so nondeterministic exchange arrival order does not
// flap the comparison.
func splitRows(res queryResult) []string {
	lines := strings.Split(strings.TrimRight(res.body, "\n"), "\n")
	rows := lines[:len(lines)-1] // last line is the trailer
	sort.Strings(rows)
	return rows
}

// TestBatchExecution runs the same queries record-at-a-time and under
// the batch protocol — via the per-request header and via the server
// default — and requires identical result sets.
func TestBatchExecution(t *testing.T) {
	_, _, ts, _ := newTestServer(t, nil)
	_, _, tsBatch, _ := newTestServer(t, func(c *Config) { c.BatchSize = 5 })

	scripts := []string{
		"scan emp | filter dept = 2 | sort salary desc, id",
		"pscan emp 4 | exchange producers=4 | agg group dept compute count",
		"with d = scan dept\nscan emp | join hash d on dept = dno",
	}
	for _, script := range scripts {
		row, err := postQuery(ts, script)
		if err != nil {
			t.Fatalf("row %q: %v", script, err)
		}
		if row.trailer.Status != "ok" {
			t.Fatalf("row %q: trailer %+v", script, row.trailer)
		}
		for name, res := range map[string]queryResult{
			"header opt-in":  mustQuery(t, func() (queryResult, error) { return postQueryBatch(ts, script, "7") }),
			"server default": mustQuery(t, func() (queryResult, error) { return postQuery(tsBatch, script) }),
			"header size 1":  mustQuery(t, func() (queryResult, error) { return postQueryBatch(ts, script, "1") }),
			"header opt-out": mustQuery(t, func() (queryResult, error) { return postQueryBatch(tsBatch, script, "0") }),
		} {
			if res.trailer.Status != "ok" {
				t.Fatalf("%s %q: trailer %+v", name, script, res.trailer)
			}
			if res.rows != row.rows {
				t.Errorf("%s %q: %d rows, row mode gave %d", name, script, res.rows, row.rows)
			}
			got, want := splitRows(res), splitRows(row)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %q: row %d differs:\n got %s\nwant %s", name, script, i, got[i], want[i])
				}
			}
		}
	}
}

func mustQuery(t *testing.T, f func() (queryResult, error)) queryResult {
	t.Helper()
	res, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBatchHeaderValidation rejects malformed X-Volcano-Batch values
// before admission.
func TestBatchHeaderValidation(t *testing.T) {
	_, _, ts, _ := newTestServer(t, nil)
	for _, bad := range []string{"-1", "x", "1.5"} {
		res, err := postQueryBatch(ts, "scan emp", bad)
		if err != nil {
			t.Fatal(err)
		}
		if res.status != http.StatusBadRequest {
			t.Errorf("X-Volcano-Batch=%q: status %d, want 400", bad, res.status)
		}
	}
}
