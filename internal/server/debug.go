package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
)

// queryStatus is the wire shape of one active query on /debug/queries:
// identity, lifecycle position, progress, and — once the iterator tree
// exists — the live per-operator counter tree. Operators is the same
// snapshot EXPLAIN ANALYZE aggregates, taken mid-flight off the atomic
// OpStats the running operators are updating.
type queryStatus struct {
	QueryID   string           `json:"query_id"`
	State     string           `json:"state"`
	Plan      string           `json:"plan"`
	Batch     int              `json:"batch"`
	CacheHit  bool             `json:"plan_cache_hit"`
	StartedAt time.Time        `json:"started_at"`
	ElapsedMs float64          `json:"elapsed_ms"`
	Rows      int64            `json:"rows"`
	Phases    phaseMillis      `json:"phases"`
	Operators *plan.OpSnapshot `json:"operators,omitempty"`

	// Replans counts how often the query's plan-cache entry has been
	// re-costed after a cardinality mis-estimate (docs/planner.md).
	Replans int64 `json:"replans,omitempty"`

	// Resources is the query's resource bill so far, read mid-flight off
	// the same meter every engine layer is attributing into.
	Resources *core.ResourceSnapshot `json:"resources,omitempty"`

	// Analyze is the mid-flight EXPLAIN ANALYZE rendering; only the
	// one-query drill-down (/debug/queries/{id}) carries it.
	Analyze string `json:"analyze,omitempty"`
}

// status renders a record for the debug endpoints.
func (q *queryRecord) status(drilldown bool) queryStatus {
	st := queryStatus{
		QueryID:   q.id,
		State:     stateName(q.state.Load()),
		Plan:      q.source,
		Batch:     q.batch,
		CacheHit:  q.cacheHit,
		StartedAt: q.started,
		ElapsedMs: float64(time.Since(q.started)) / 1e6,
		Rows:      q.rows.Load(),
		Phases:    q.phases(),
	}
	if q.entry != nil {
		st.Replans = q.entry.replanCount()
	}
	if an := q.analysis.Load(); an != nil {
		snap := an.Snapshot()
		st.Operators = &snap
		res := an.Resources()
		st.Resources = &res
		if drilldown {
			st.Analyze = an.String()
		}
	}
	return st
}

// MountDebug registers the debug endpoints (/debug/queries,
// /debug/queries/{id}, /debug/slowlog) on an additional mux. The main
// handler serves them already; this lets an operations listener — the
// volcano-serve -metrics address — expose them without exposing /query.
func (s *Server) MountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/queries/", s.handleDebugQuery)
	mux.HandleFunc("/debug/slowlog", s.handleDebugSlowlog)
	if s.cfg.Dist != nil {
		mux.HandleFunc("/debug/workers", s.handleDebugWorkers)
	}
}

// handleDebugQueries serves GET /debug/queries: every active query with
// live progress, oldest first.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET the active-query list", http.StatusMethodNotAllowed)
		return
	}
	recs := s.reg.snapshot()
	out := struct {
		Active  int           `json:"active"`
		Queries []queryStatus `json:"queries"`
	}{Active: len(recs), Queries: make([]queryStatus, 0, len(recs))}
	for _, q := range recs {
		out.Queries = append(out.Queries, q.status(false))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebugQuery serves GET /debug/queries/{id}: one query's drill-down
// including the mid-flight EXPLAIN ANALYZE text.
func (s *Server) handleDebugQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET one query's drill-down", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/queries/")
	q, ok := s.reg.get(id)
	if !ok {
		http.Error(w, "no active query with that id", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, q.status(true))
}

// handleDebugSlowlog serves GET /debug/slowlog: the retained tail of the
// slow-query log, oldest first.
func (s *Server) handleDebugSlowlog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET the slow-query log", http.StatusMethodNotAllowed)
		return
	}
	entries := s.slow.entries()
	writeJSON(w, http.StatusOK, struct {
		Total   int            `json:"total"`
		Entries []slowLogEntry `json:"entries"`
	}{Total: s.slow.total(), Entries: entries})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
