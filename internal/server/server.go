// Package server is the Volcano query service: an HTTP front end that
// accepts plan-language scripts, executes them against a shared read-only
// volume and buffer pool, and streams results as NDJSON. It encapsulates
// the serving concerns the paper's exchange operator does not: admission
// control (bounding concurrent queries and total producer goroutines), a
// compiled-plan cache, per-request cancellation that tears the iterator
// tree down through the exchange shutdown handshake, and graceful drain.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/plan"
)

// Config configures a query server. Env and Catalog are required; zero
// values elsewhere pick the documented defaults.
type Config struct {
	// Env is the shared execution environment: the buffer pool and the
	// temp volume every admitted query allocates intermediates on.
	Env *core.Env
	// Catalog resolves table (and index) names. It must be safe for
	// concurrent use; VolumeCatalog over a file.Volume is.
	Catalog plan.Catalog
	// CatalogVersion participates in plan-cache keys: bump it when the
	// catalog changes and every cached plan is invalidated at once.
	CatalogVersion string

	// MaxConcurrent bounds queries executing at once (default 4).
	MaxConcurrent int
	// MaxProducers bounds the sum of exchange producer goroutines across
	// all executing queries (default 64). A plan whose own footprint
	// exceeds this is rejected outright with 400.
	MaxProducers int
	// MaxQueue bounds queries waiting for admission; the excess is
	// rejected immediately with 429 (default 16).
	MaxQueue int
	// QueueWait bounds the time one query waits for admission before a
	// 503 (default 10s).
	QueueWait time.Duration
	// MaxQueryTime bounds a query's total execution; 0 means unbounded.
	// Expiry cancels the query mid-stream like a client disconnect.
	MaxQueryTime time.Duration
	// MaxPlanBytes bounds the request body (default 64 KiB).
	MaxPlanBytes int64
	// WriteStallTimeout bounds how long one flush of the result stream may
	// sit in the kernel's send buffer with the client not reading before
	// the connection is severed (0 = unbounded). It is a per-write
	// deadline, not a whole-response deadline: a long-running query that
	// streams for minutes is fine as long as the client keeps consuming.
	// This is what http.Server.WriteTimeout cannot express — that timeout
	// would kill every stream longer than its budget regardless of client
	// behaviour.
	WriteStallTimeout time.Duration
	// PlanCacheSize is the LRU capacity in templates (default 128; a
	// negative value disables the cache).
	PlanCacheSize int
	// DisableCosting turns the cost-based planning pass off: queries
	// execute the compiled template exactly as written, with no knob
	// filling, no choose-plan insertion, and no cardinality feedback.
	// Costing is on by default; plans that spell out their knobs are
	// left alone either way.
	DisableCosting bool
	// FlushEvery flushes the response stream every N rows (default 64).
	FlushEvery int
	// BatchSize, when positive, executes every query under the
	// batch-at-a-time protocol with this batch size: plans are built with
	// plan.BuildOptions.BatchSize and the result stream drains the root
	// through NextBatch. A request may override it (either way) with the
	// X-Volcano-Batch header: a positive integer selects that batch size,
	// 0 forces record-at-a-time. Zero keeps record-at-a-time execution.
	BatchSize int

	// SlowQuery is the slow-query threshold: a completed query whose
	// plan-to-trailer wall time meets or exceeds it is recorded in the
	// structured slow-query log. Errored and canceled queries are
	// recorded regardless of duration. Zero keeps the duration trigger
	// off (only errors/cancels are logged); a negative value disables
	// the log entirely.
	SlowQuery time.Duration
	// SlowLogCapacity bounds the in-memory slow-query ring served on
	// GET /debug/slowlog (default 128 entries).
	SlowLogCapacity int
	// SlowLogSink, when non-nil, additionally receives every slow-query
	// entry as one slog JSON line (volcano-serve wires -query-log here).
	// Writes happen per logged query, never per row.
	SlowLogSink io.Writer

	// Metrics, when non-nil, receives the volcano_server_* families and
	// is served on GET /metrics.
	Metrics *metrics.Registry

	// Dist, when non-nil, enables distributed execution: every query
	// build offers its distributable exchange cuts to the coordinator,
	// which ships producer fragments to registered volcano-worker
	// processes while the root fragment runs here. The server also
	// mounts POST /dist/register (worker registration) and GET
	// /debug/workers (fleet view). With no live workers registered the
	// binder declines and queries execute locally, unchanged.
	Dist *dist.Coordinator
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxProducers <= 0 {
		c.MaxProducers = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.MaxPlanBytes <= 0 {
		c.MaxPlanBytes = 64 << 10
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 128
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 64
	}
	return c
}

// Server executes plan scripts over HTTP. Create with New, expose
// Handler, and call Drain before process exit.
type Server struct {
	cfg   Config
	m     *serverMetrics
	gov   *governor
	cache *planCache
	life  *lifecycle
	reg   *registry
	slow  *slowLog
	mux   *http.ServeMux

	// catalogVersion is the current plan-cache epoch, seeded from
	// Config.CatalogVersion and bumped by SetCatalogVersion.
	verMu          sync.RWMutex
	catalogVersion string
}

// New builds a Server. The caller owns the listener; Handler returns the
// full mux (POST /query, GET /healthz, GET /metrics, GET /debug/queries
// and /debug/queries/{id}, GET /debug/slowlog, /debug/pprof/).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Env == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("server: Config.Env and Config.Catalog are required")
	}
	m := newServerMetrics(cfg.Metrics)
	s := &Server{
		cfg:            cfg,
		m:              m,
		gov:            newGovernor(cfg.MaxConcurrent, cfg.MaxProducers, cfg.MaxQueue, m),
		cache:          newPlanCache(cfg.PlanCacheSize, m),
		life:           newLifecycle(),
		reg:            newRegistry(m),
		slow:           newSlowLog(cfg.SlowLogCapacity, cfg.SlowLogSink),
		mux:            http.NewServeMux(),
		catalogVersion: cfg.CatalogVersion,
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("/debug/queries/", s.handleDebugQuery)
	s.mux.HandleFunc("/debug/slowlog", s.handleDebugSlowlog)
	if cfg.Dist != nil {
		s.mux.HandleFunc("/dist/register", s.handleDistRegister)
		s.mux.HandleFunc("/debug/workers", s.handleDebugWorkers)
	}
	metrics.Mount(s.mux, cfg.Metrics)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the server down: new and queued queries are
// rejected with 503, then Drain blocks until in-flight queries finish or
// ctx expires. It is idempotent. After a nil return the shared volume and
// pool are quiescent and safe to close.
func (s *Server) Drain(ctx context.Context) error {
	s.life.beginDrain()
	s.gov.drain()
	return s.life.wait(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.life.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a plan script to /query", http.StatusMethodNotAllowed)
		return
	}

	// Identity first: every response past this point — success, error,
	// or rejection — names the query, in the header and in the body, so
	// clients, traces, logs and debug views join on one key.
	id := r.Header.Get("X-Volcano-Query-Id")
	if id == "" {
		id = newQueryID()
	} else if !validQueryID(id) {
		s.m.rejParse.Inc()
		writeReject(w, http.StatusBadRequest, "",
			fmt.Sprintf("server: bad X-Volcano-Query-Id %q (want 1-120 chars of [A-Za-z0-9._:-])", id), 0, nil)
		return
	}
	w.Header().Set("X-Volcano-Query-Id", id)

	// Register with the lifecycle before anything else so Drain's wait
	// covers every request past this point.
	if !s.life.enter() {
		s.m.rejDraining.Inc()
		writeReject(w, ErrDraining.Status, id, ErrDraining.Error(), 0, nil)
		return
	}
	defer s.life.exit()

	start := time.Now()
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxPlanBytes))
	if err != nil {
		s.m.rejParse.Inc()
		writeReject(w, http.StatusBadRequest, id, fmt.Sprintf("server: reading plan: %v", err), time.Since(start), nil)
		return
	}
	analyze, err := analyzeRequested(r)
	if err != nil {
		s.m.rejParse.Inc()
		writeReject(w, http.StatusBadRequest, id, err.Error(), time.Since(start), nil)
		return
	}
	batch, err := s.batchSize(r)
	if err != nil {
		s.m.rejParse.Inc()
		writeReject(w, http.StatusBadRequest, id, err.Error(), time.Since(start), nil)
		return
	}

	// Plan phase: resolve the script to a compiled template via the
	// cache, then — unless costing is off — to the entry's costed
	// derivation, whose tree has planner-chosen knobs and whose
	// estimates feed EXPLAIN ANALYZE and the feedback loop.
	entry, cacheHit, err := s.compile(string(src))
	if err != nil {
		planDur := time.Since(start)
		s.m.phasePlan.Observe(planDur)
		s.m.rejParse.Inc()
		writeReject(w, http.StatusBadRequest, id, err.Error(), planDur, nil)
		return
	}
	tpl := entry.tpl
	var costed *plan.CostedPlan
	if !s.cfg.DisableCosting {
		costed = entry.costedFor(s.cfg.Catalog, s.m)
		tpl = costed.Template
	}
	planDur := time.Since(start)
	s.m.phasePlan.Observe(planDur)

	// The query now has identity, a plan, and a start time: it enters the
	// active registry and stays visible on /debug/queries until done.
	rec := &queryRecord{id: id, source: tpl.Source(), batch: batch, cacheHit: cacheHit, started: start, entry: entry}
	rec.planNs.Store(int64(planDur))
	if err := s.reg.add(rec); err != nil {
		s.m.rejDuplicate.Inc()
		writeReject(w, http.StatusConflict, id, err.Error(), time.Since(start), nil)
		return
	}
	defer s.reg.remove(id)

	qctx := r.Context()
	if s.cfg.MaxQueryTime > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, s.cfg.MaxQueryTime)
		defer cancel()
	}

	// Queued phase: admission control.
	weight := tpl.ProducerGoroutines()
	queuedStart := time.Now()
	admitCtx, cancelAdmit := context.WithTimeout(qctx, s.cfg.QueueWait)
	err = s.gov.admit(admitCtx, weight)
	cancelAdmit()
	queuedDur := time.Since(queuedStart)
	rec.queuedNs.Store(int64(queuedDur))
	s.m.phaseQueued.Observe(queuedDur)
	if err != nil {
		var ae *AdmitError
		if errors.As(err, &ae) {
			s.m.rejectionCounter(ae.Reason).Inc()
			ph := rec.phases()
			writeReject(w, ae.Status, id, ae.Error(), time.Since(start), &ph)
			s.finishQuery(rec, "error", fmt.Sprintf("query %s: %v", id, ae))
			return
		}
		// Otherwise the client disconnected while queued; nobody is
		// listening for a response, but the abandonment still makes the
		// slow-query log — it held a queue position.
		s.finishQuery(rec, "canceled", fmt.Sprintf("query %s: canceled while queued", id))
		return
	}
	defer s.gov.release(weight)

	s.m.admitted.Inc()
	s.m.inFlight.Inc()
	defer s.m.inFlight.Dec()
	admitted := time.Now()
	defer func() { s.m.querySecs.Observe(time.Since(admitted)) }()

	// Execution runs under pprof labels: every profile sample taken on
	// this goroutine — and on any goroutine the exchange forks from it —
	// carries the query identity, so a CPU or goroutine profile slices
	// per query. Exchange producer goroutines drawn from pre-spawned
	// worker pools re-label themselves (core.Exchange does that from
	// BuildOptions.QueryID).
	pprof.Do(qctx, pprof.Labels("query_id", rec.id, "op", "query-handler"), func(ctx context.Context) {
		s.execute(w, ctx, rec, entry, costed, tpl, batch, analyze)
	})
}

// batchSize resolves the effective batch size for one request: the
// X-Volcano-Batch header when present (0 = force record-at-a-time),
// otherwise the server default.
func (s *Server) batchSize(r *http.Request) (int, error) {
	h := r.Header.Get("X-Volcano-Batch")
	if h == "" {
		return s.cfg.BatchSize, nil
	}
	n, err := strconv.Atoi(h)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("server: bad X-Volcano-Batch %q (want a non-negative integer)", h)
	}
	return n, nil
}

// analyzeRequested reads the X-Volcano-Analyze header: "1"/"true" embeds
// the EXPLAIN ANALYZE report of this run in the trailing status object,
// "0"/"false"/"" (absent) does not; anything else is a 400, mirroring
// the X-Volcano-Batch contract.
func analyzeRequested(r *http.Request) (bool, error) {
	switch h := r.Header.Get("X-Volcano-Analyze"); h {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, fmt.Errorf("server: bad X-Volcano-Analyze %q (want 1, true, 0, or false)", h)
	}
}

// SetCatalogVersion bumps the plan-cache epoch: subsequent lookups key
// on the new version, and every template cached under any other version
// is purged immediately — stale entries can never hit again, so leaving
// them to age out of the LRU would squat on capacity that live plans
// need. In-flight queries already holding a template are unaffected
// (templates are immutable). Setting the same version is a no-op.
func (s *Server) SetCatalogVersion(v string) {
	s.verMu.Lock()
	changed := s.catalogVersion != v
	s.catalogVersion = v
	s.verMu.Unlock()
	if changed {
		s.cache.purgeExcept(v)
	}
}

// currentCatalogVersion reads the plan-cache epoch.
func (s *Server) currentCatalogVersion() string {
	s.verMu.RLock()
	defer s.verMu.RUnlock()
	return s.catalogVersion
}

// compile resolves a plan source to a cache entry; the bool reports
// whether the lookup hit (so the query's lifecycle record can tell a
// reused template from a fresh compile). With the cache disabled the
// entry is untracked but fully functional.
func (s *Server) compile(src string) (*cacheEntry, bool, error) {
	key := cacheKey(s.currentCatalogVersion(), src)
	if e, ok := s.cache.get(key); ok {
		return e, true, nil
	}
	tpl, err := plan.Compile(src)
	if err != nil {
		return nil, false, err
	}
	return s.cache.put(key, tpl), false, nil
}

// execute builds a fresh iterator tree from the template and streams its
// rows. Past the 200 header, errors travel in the NDJSON trailer. A
// positive batch runs the whole query under the batch-at-a-time protocol.
//
// Every build is analyzed: the instrumentation wrappers' OpStats are
// atomic, so rec exposes live per-operator progress to /debug/queries
// while the query runs, and the final snapshot feeds the slow-query log
// (and, with X-Volcano-Analyze, the trailer) when it completes.
func (s *Server) execute(w http.ResponseWriter, ctx context.Context, rec *queryRecord, entry *cacheEntry, costed *plan.CostedPlan, tpl *plan.Template, batch int, analyze bool) {
	execStart := time.Now()
	rec.state.Store(stateExecuting)
	opts := plan.BuildOptions{
		Analyze:   true,
		Metrics:   s.cfg.Metrics,
		Done:      ctx.Done(),
		BatchSize: batch,
		QueryID:   rec.id,
		Meter:     &rec.meter,
	}
	if costed != nil {
		opts.Estimates = costed.Estimates
	}
	// With a coordinator configured, offer every distributable exchange
	// cut to the worker fleet; the summary collects what actually shipped
	// for the trailer and EXPLAIN ANALYZE.
	var distSum *dist.Summary
	if s.cfg.Dist != nil {
		distSum = &dist.Summary{}
		opts.Remote = s.cfg.Dist.Binder(dist.BindRequest{
			QueryID:        rec.id,
			Source:         tpl.Source(),
			Root:           tpl.Root(),
			CatalogVersion: s.currentCatalogVersion(),
			BatchSize:      batch,
			Env:            s.cfg.Env,
			Cat:            s.cfg.Catalog,
			Meter:          &rec.meter,
			Summary:        distSum,
			Done:           ctx.Done(),
		})
	}
	it, an, err := tpl.Build(s.cfg.Env, s.cfg.Catalog, opts)
	if err != nil {
		s.m.rejPlan.Inc()
		writeReject(w, http.StatusBadRequest, rec.id, err.Error(), time.Since(rec.started), nil)
		s.finishQuery(rec, "error", err.Error())
		return
	}
	for _, fn := range distSum.StatFuncs() {
		an.AddFragment(fn)
	}
	rec.analysis.Store(an)
	if err := it.Open(); err != nil {
		s.m.rejPlan.Inc()
		msg := fmt.Sprintf("server: open: %v", err)
		writeReject(w, http.StatusInternalServerError, rec.id, msg, time.Since(rec.started), nil)
		s.finishQuery(rec, "error", msg)
		return
	}
	execDur := time.Since(execStart)
	rec.executeNs.Store(int64(execDur))
	s.m.phaseExecute.Observe(execDur)
	rec.state.Store(stateStreaming)
	streamStart := time.Now()

	sch := it.Schema()
	rw := newRowWriter(sch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	// Arm the per-write stall deadline and push it forward before every
	// flush: a client that stops reading stalls the next write until the
	// deadline severs the connection, which cancels the request context
	// and tears the iterator tree down through the exchange handshake.
	// Best-effort — ResponseRecorder and other wrappers that cannot set
	// deadlines just leave the stream unbounded, as before.
	rc := http.NewResponseController(w)
	bumpDeadline := func() {
		if s.cfg.WriteStallTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteStallTimeout))
		}
	}
	bumpDeadline()
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var rows int64
	var streamErr error
	emit := func(r core.Rec) error {
		vals, err := sch.Decode(r.Data)
		if err != nil {
			return err
		}
		line := rw.row(vals)
		if _, err := w.Write(line); err != nil {
			return err
		}
		rows++
		// The per-record bookkeeping budget: one atomic add for the live
		// registry and two for the resource meter, zero allocations
		// (TestRegistryHotPathZeroAlloc, TestMeterHotPathZeroAlloc).
		rec.addRows(1)
		rec.meter.StreamRow(len(line))
		if flusher != nil && rows%int64(s.cfg.FlushEvery) == 0 {
			bumpDeadline()
			flusher.Flush()
		}
		return nil
	}
	if batch > 0 {
		// Batch drain: one NextBatch refill per batch, pins released in one
		// coalesced pass per batch.
		src := core.AsBatch(it)
		b := core.NewBatch(batch)
	drain:
		for ctx.Err() == nil {
			if err := src.NextBatch(b); err != nil {
				streamErr = err
				break
			}
			if b.Len() == 0 {
				break
			}
			for _, rec := range b.Recs() {
				if err := emit(rec); err != nil {
					streamErr = err
					b.Release()
					break drain
				}
			}
			b.Release()
		}
	} else {
		for ctx.Err() == nil {
			rec, ok, err := it.Next()
			if err != nil {
				streamErr = err
				break
			}
			if !ok {
				break
			}
			err = emit(rec)
			rec.Unfix()
			if err != nil {
				streamErr = err
				break
			}
		}
	}
	closeErr := it.Close()
	s.m.rowsOut.Add(rows)
	rec.streamNs.Store(int64(time.Since(streamStart)))
	s.m.phaseStream.Observe(time.Since(streamStart))

	// Errors below are stamped with the query ID: the trailer names it in
	// query_id anyway, but cancellation and failure messages travel on to
	// logs and client-side error reports, where the ID is the join key
	// back to traces and the slow-query log.
	t := trailer{Status: "ok", Rows: rows, QueryID: rec.id}
	switch {
	case ctx.Err() != nil:
		// Client disconnect or deadline: the exchange teardown already ran
		// via Done + Close. The trailer is best-effort — on a disconnect
		// nobody reads it.
		s.m.canceled.Inc()
		t.Status = "canceled"
		t.Error = fmt.Sprintf("query %s: %v", rec.id, ctx.Err())
	case streamErr != nil && !errors.Is(streamErr, core.ErrCanceled):
		t.Status = "error"
		t.Error = fmt.Sprintf("query %s: %v", rec.id, streamErr)
	case closeErr != nil && !errors.Is(closeErr, core.ErrCanceled):
		t.Status = "error"
		t.Error = fmt.Sprintf("query %s: %v", rec.id, closeErr)
	}
	ph := rec.phases()
	t.Phases = &ph
	t.ElapsedMs = float64(time.Since(rec.started)) / 1e6
	// The attributed resource bill rides every trailer — success, error
	// or cancellation — from the same snapshot the slow-query log and the
	// volcano_server_query_* totals read.
	res := an.Resources()
	t.Resources = &res
	if frags := distSum.Fragments(); len(frags) > 0 {
		t.Dist = &distStatus{
			Fragments:     frags,
			Retries:       distSum.Retries.Load(),
			WireRecvBytes: distSum.WireRecv.Load(),
		}
	}
	if analyze {
		t.Analyze = an.String()
	}
	if costed != nil {
		s.recordChoices(costed, an)
		// Feedback only on clean completion: a canceled or errored run
		// observed a truncated row flow, which would look like a gross
		// mis-estimate and trigger a spurious re-plan.
		if t.Status == "ok" {
			entry.feedback(costed, an, s.m)
		}
	}
	bumpDeadline()
	_, _ = w.Write(t.render())
	if flusher != nil {
		flusher.Flush()
	}

	s.finishQuery(rec, t.Status, t.Error)
}

// recordChoices settles the run's choose-plan decisions into the
// volcano_planner_choices_total{alt} family.
func (s *Server) recordChoices(cp *plan.CostedPlan, an *plan.Analysis) {
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n.Kind == plan.KindChoosePlan {
			if i := an.Choice(n); i >= 0 {
				alt := strconv.Itoa(i)
				if n.Choose != nil && i < len(n.Choose.Labels) {
					alt = n.Choose.Labels[i]
				}
				s.m.choiceCounter(alt).Inc()
			}
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(cp.Template.Root())
}

// finishQuery settles a query's lifecycle accounting: rows by outcome,
// and — when the query was slow, errored, or canceled — one structured
// slow-query log entry carrying the final per-operator snapshot.
func (s *Server) finishQuery(rec *queryRecord, outcome, errText string) {
	s.m.rowsCounter(outcome).Add(rec.rows.Load())
	// Settle the query's resource bill into the process-wide totals; the
	// snapshot is final here (the iterator tree is closed), so per-query
	// meters sum exactly to these counters.
	res := rec.resources()
	s.m.queryCPUNanos.Add(int64(res.CPUSeconds * 1e9))
	s.m.queryIOBytes.Add(res.IOBytes())
	s.m.queryBufFixes.Add(res.BufferFixes)
	if s.cfg.SlowQuery < 0 {
		return
	}
	elapsed := time.Since(rec.started)
	slow := s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery
	if outcome == "ok" && !slow {
		return
	}
	var ops *plan.OpSnapshot
	if an := rec.analysis.Load(); an != nil {
		snap := an.Snapshot()
		ops = &snap
	}
	s.m.slowQueries.Inc()
	s.slow.record(slowLogEntry{
		Time:      time.Now(),
		QueryID:   rec.id,
		Plan:      rec.source,
		Batch:     rec.batch,
		CacheHit:  rec.cacheHit,
		Outcome:   outcome,
		Error:     errText,
		Rows:      rec.rows.Load(),
		ElapsedMs: float64(elapsed) / 1e6,
		Phases:    rec.phases(),
		Operators: ops,
		Resources: &res,
	})
}

// lifecycle tracks in-flight requests and the draining flag. It replaces
// a bare WaitGroup because requests must atomically check "draining?"
// while registering — Add racing Wait is not defined for WaitGroup.
type lifecycle struct {
	mu       sync.Mutex
	inFlight int
	draining bool
	idle     chan struct{} // closed when draining and inFlight hits 0
}

func newLifecycle() *lifecycle {
	return &lifecycle{idle: make(chan struct{})}
}

// enter registers a request; false means the server is draining.
func (l *lifecycle) enter() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.draining {
		return false
	}
	l.inFlight++
	return true
}

func (l *lifecycle) exit() {
	l.mu.Lock()
	l.inFlight--
	if l.draining && l.inFlight == 0 {
		l.closeIdleLocked()
	}
	l.mu.Unlock()
}

func (l *lifecycle) beginDrain() {
	l.mu.Lock()
	if !l.draining {
		l.draining = true
		if l.inFlight == 0 {
			l.closeIdleLocked()
		}
	}
	l.mu.Unlock()
}

func (l *lifecycle) closeIdleLocked() {
	select {
	case <-l.idle:
	default:
		close(l.idle)
	}
}

func (l *lifecycle) isDraining() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.draining
}

// wait blocks until drain completes or ctx expires.
func (l *lifecycle) wait(ctx context.Context) error {
	select {
	case <-l.idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}
