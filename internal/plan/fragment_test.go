package plan

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
)

// TestFragmentGoldenCorpus pins the coordinator's fragment decomposition
// of the whole differential corpus: for each of the 24 plans, which
// exchange boundaries are distributable cuts, at what paths, with how
// many producer fragments, and whether skip-replay retry applies
// (deterministic subtree). Any change to the cut predicate shows up here
// as a diff against a reviewed file, not as a silent shift in what runs
// where. Regenerate with:
// go test ./internal/plan -run TestFragmentGoldenCorpus -update
func TestFragmentGoldenCorpus(t *testing.T) {
	var sb strings.Builder
	for _, tc := range diffCorpus {
		n, err := Parse(tc.script)
		if err != nil {
			t.Fatalf("parse %s: %v", tc.name, err)
		}
		cuts := Cuts(n)
		if len(cuts) == 0 {
			fmt.Fprintf(&sb, "%s: local\n", tc.name)
			continue
		}
		for _, c := range cuts {
			det := "resumable"
			if !Deterministic(c.Node.Inputs[0]) {
				det = "restart-only"
			}
			fmt.Fprintf(&sb, "%s: cut path=%q producers=%d %s\n", tc.name, c.Path, c.Producers, det)
		}
	}
	got := sb.String()

	golden := filepath.Join("testdata", "fragments.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("fragment decomposition changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNodeAtPath covers navigation, including rejection of paths that
// leave the tree.
func TestNodeAtPath(t *testing.T) {
	n, err := Parse("with d = scan dept\npscan nums 4 | exchange producers=4 | join hash d on v = dno")
	if err != nil {
		t.Fatal(err)
	}
	root, err := NodeAtPath(n, "")
	if err != nil || root != n {
		t.Fatalf("root path: %v", err)
	}
	x, err := NodeAtPath(n, "0")
	if err != nil || x.Kind != KindExchange {
		t.Fatalf("path 0: kind=%v err=%v", x.Kind, err)
	}
	ps, err := NodeAtPath(n, "0.0")
	if err != nil || ps.Kind != KindPartitionedScan {
		t.Fatalf("path 0.0: err=%v", err)
	}
	for _, bad := range []string{"9", "0.0.0.0", "x", "-1"} {
		if _, err := NodeAtPath(n, bad); err == nil {
			t.Errorf("path %q accepted", bad)
		}
	}
}

// concatIter drains its inputs in order — the minimal stand-in for a
// remote fragment feed.
type concatIter struct {
	its []core.Iterator
	cur int
}

func (a *concatIter) Schema() *record.Schema { return a.its[0].Schema() }

func (a *concatIter) Open() error {
	for _, it := range a.its {
		if err := it.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (a *concatIter) Next() (core.Rec, bool, error) {
	for a.cur < len(a.its) {
		r, ok, err := a.its[a.cur].Next()
		if err != nil || ok {
			return r, ok, err
		}
		a.cur++
	}
	return core.Rec{}, false, nil
}

func (a *concatIter) Close() error {
	var first error
	for _, it := range a.its {
		if err := it.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TestRemoteBinderSubstitutes proves the build offers exactly the
// distributable cuts to the binder and splices the returned iterator in
// place of the exchange subtree.
func TestRemoteBinderSubstitutes(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 200, 4)
	n, err := Parse("pscan nums 4 | exchange producers=4 packet=16 | agg hash group v compute count | sort v")
	if err != nil {
		t.Fatal(err)
	}

	// First: what does the plan produce unbound?
	wantRows, err := Run(db.env, db.cat, n)
	if err != nil {
		t.Fatal(err)
	}

	// Bind the cut to a "remote" that is secretly a local fragment build
	// of every producer chained through a union-style feed — the binder
	// contract, minus the network.
	var offered []string
	binder := func(path string, x *Node) (core.Iterator, bool, error) {
		offered = append(offered, path)
		its := make([]core.Iterator, 0, x.X.Producers)
		for g := 0; g < x.X.Producers; g++ {
			it, err := BuildFragmentProducer(db.env, db.cat, n, path, g, BuildOptions{})
			if err != nil {
				return nil, false, err
			}
			its = append(its, it)
		}
		return &concatIter{its: its}, true, nil
	}
	it, _, err := BuildWith(db.env, db.cat, n, BuildOptions{Remote: binder})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := core.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(offered) != 1 || offered[0] != "0.0" {
		t.Fatalf("binder offered paths %v, want [0.0]", offered)
	}
	got, want := renderSorted(rows), renderSorted(wantRows)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("bound build diverged from local build")
	}
}
