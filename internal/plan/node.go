// Package plan provides a declarative layer over the core iterators: plan
// trees that can be built programmatically or parsed from a small plan
// language, validated, explained, and instantiated — including parallel
// instantiation of exchange nodes with producer-indexed subtrees.
package plan

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/file"
	"repro/internal/trace"
)

// Kind enumerates plan node types.
type Kind uint8

// Plan node kinds.
const (
	KindScan Kind = iota
	KindPartitionedScan
	KindIndexScan
	KindFilter
	KindProject
	KindSort
	KindDistinct
	KindAggregate
	KindMatch
	KindNestedLoops
	KindDivision
	KindExchange
	KindChoosePlan
)

var kindNames = map[Kind]string{
	KindScan: "scan", KindPartitionedScan: "pscan", KindIndexScan: "iscan",
	KindFilter: "filter", KindProject: "project", KindSort: "sort",
	KindDistinct: "distinct", KindAggregate: "aggregate", KindMatch: "match",
	KindNestedLoops: "nestedloops", KindDivision: "division", KindExchange: "exchange",
	KindChoosePlan: "chooseplan",
}

// String names the kind.
func (k Kind) String() string { return kindNames[k] }

// Algo selects between the two algorithms of binary/grouping operators.
type Algo uint8

// Algorithm choices.
const (
	AlgoHash Algo = iota
	AlgoSort
	AlgoLoops // nested loops (joins only)
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoSort:
		return "sort"
	case AlgoLoops:
		return "loops"
	default:
		return "hash"
	}
}

// Node is one operator of a plan tree.
type Node struct {
	Kind   Kind
	Inputs []*Node

	// Scan / PartitionedScan / IndexScan.
	Table      string
	Partitions int // PartitionedScan: files "<Table>.<g>"
	ReadAhead  bool
	// IndexScan: the catalogued index name and optional int-key bounds.
	IndexName string
	LoKey     *int64
	HiKey     *int64

	// Filter / NestedLoops predicate, Project expressions.
	Pred  string
	Exprs []string
	Names []string
	Mode  expr.Mode

	// Sort.
	SortBy []record.SortSpec

	// Aggregate / Distinct / Match / Division keys.
	GroupBy  record.Key
	Aggs     []core.AggSpec
	Algo     Algo
	// AlgoSet records that the plan text named the algorithm explicitly
	// (join hash ..., agg sort ...). The cost pass only overrides
	// strategy choices the author left open.
	AlgoSet bool
	MatchOp  core.MatchOp
	LeftKey  record.Key
	RightKey record.Key
	QuotKey  record.Key
	DivKey   record.Key
	DivisKey record.Key

	// Unresolved (by-name) variants, filled by the plan-language parser
	// and resolved against input schemas at build time. When a Terms
	// field is non-nil it takes precedence over its indexed counterpart.
	SortTerms  []Term
	GroupTerms []Term
	AggTerms   []Term // parallel to Aggs; Index -1 for count
	LeftTerms  []Term
	RightTerms []Term
	QuotTerms  []Term
	DivTerms   []Term
	DivisTerms []Term
	HashTerms  []Term // exchange hash partition fields
	MergeTerms []Term // exchange merge order
	// AllFieldKeys makes match keys cover every field (set operations).
	AllFieldKeys bool

	// Exchange.
	X *XOpts

	// ChoosePlan: every Inputs[i] is a complete alternative subplan; the
	// decision support function described by Choose runs at Open.
	Choose *ChooseSpec
}

// ChooseSpec describes a choose-plan decision function [Graefe & Ward,
// SIGMOD 1989]: the choice between alternatives is deferred to Open,
// when the catalog's *current* statistics for Table are consulted — the
// plan may be cached and re-run long after it was costed.
type ChooseSpec struct {
	// Table is the base table whose runtime cardinality drives the
	// decision (the build side of a match).
	Table string
	// Threshold: records <= Threshold at Open chooses Small, above it
	// Large; when the catalog has no stats for Table the Default
	// alternative runs.
	Threshold int64
	Small     int
	Large     int
	Default   int
	// Labels name the alternatives for EXPLAIN and metrics ("hash",
	// "merge"); parallel to Inputs.
	Labels []string
}

// XOpts carries the exchange state-record settings at the plan level.
type XOpts struct {
	Producers int
	// ProducersSet records that the plan text fixed the producer count
	// explicitly (producers=N); without it the cost pass may choose.
	ProducersSet bool
	Consumers    int
	PacketSize  int
	FlowControl bool
	Slack       int
	Broadcast   bool
	Inline      bool
	KeepStreams bool
	MergeSort   []record.SortSpec // with KeepStreams: merge streams on this order
	Fork        core.ForkScheme
	ForkCost    time.Duration
	// Partition: "" (round robin), or hash keys.
	HashKeys  record.Key
	RangeCol  int
	RangeCuts []record.Value
	UseRange  bool
}

// Catalog resolves table names to files.
type Catalog interface {
	Lookup(name string) (*file.File, error)
}

// IndexCatalog is the optional extension catalogs implement when they can
// also resolve named B+-tree indexes (durable volumes do).
type IndexCatalog interface {
	LookupIndex(name string) (*btree.Tree, error)
}

// StatsCatalog is the optional extension catalogs implement when they
// can report table statistics (record/page counts, per-field distinct
// estimates). The cost pass works from these at planning time, and
// choose-plan decision functions consult them again at Open.
type StatsCatalog interface {
	LookupStats(name string) (file.TableStats, bool)
}

// MapCatalog is a Catalog backed by a map.
type MapCatalog map[string]*file.File

// Lookup implements Catalog.
func (m MapCatalog) Lookup(name string) (*file.File, error) {
	f, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("plan: table %q not found", name)
	}
	return f, nil
}

// LookupStats implements StatsCatalog.
func (m MapCatalog) LookupStats(name string) (file.TableStats, bool) {
	f, ok := m[name]
	if !ok {
		return file.TableStats{}, false
	}
	return f.Stats(), true
}

// VolumeCatalog resolves names against volumes, in order.
type VolumeCatalog []*file.Volume

// Lookup implements Catalog.
func (v VolumeCatalog) Lookup(name string) (*file.File, error) {
	for _, vol := range v {
		if f, err := vol.Open(name); err == nil {
			return f, nil
		}
	}
	return nil, fmt.Errorf("plan: table %q not found on any volume", name)
}

// LookupStats implements StatsCatalog.
func (v VolumeCatalog) LookupStats(name string) (file.TableStats, bool) {
	for _, vol := range v {
		if st, ok := vol.Stats(name); ok {
			return st, true
		}
	}
	return file.TableStats{}, false
}

// LookupIndex implements IndexCatalog.
func (v VolumeCatalog) LookupIndex(name string) (*btree.Tree, error) {
	for _, vol := range v {
		if t, err := vol.OpenIndex(name); err == nil {
			return t, nil
		}
	}
	return nil, fmt.Errorf("plan: index %q not found on any volume", name)
}

// buildCtx carries instantiation state.
type buildCtx struct {
	env       *core.Env
	cat       Catalog
	partition int             // current producer index (for partitioned scans)
	analysis  *Analysis       // non-nil when instrumenting (BuildAnalyzed)
	tracer    *trace.Tracer   // non-nil when event tracing (BuildTraced)
	done      <-chan struct{} // non-nil: cancellation for exchange producer groups
	batch     int             // >0: enable the batch protocol on every operator
	queryID   string          // stamped into exchanges for pprof labels
	remote    RemoteBinder    // non-nil: offered distributable exchange nodes
	path      string          // dotted child-index path of the node being built
}

// in derives the context for building child i: path tracking is only
// paid when a remote binder is watching the build.
func (c *buildCtx) in(i int) *buildCtx {
	if c.remote == nil {
		return c
	}
	cc := *c
	cc.path = childPath(c.path, i)
	return &cc
}

// BuildOptions selects the optional build facilities. The zero value is a
// plain Build. All combinations compose: one iterator tree can be
// instrumented, traced, scrape-visible and cancellable at once.
type BuildOptions struct {
	// Analyze wraps every operator for EXPLAIN ANALYZE; the returned
	// *Analysis is non-nil. Implied by Metrics.
	Analyze bool
	// Tracer records structured protocol events (nil = off).
	Tracer *trace.Tracer
	// Metrics registers per-operator Next-latency histograms
	// (volcano_op_next_seconds) on the registry (nil = off).
	Metrics *metrics.Registry
	// Done, when non-nil, is plumbed into every exchange the build
	// instantiates: closing it makes producer groups abandon their
	// subtrees (core.ExchangeConfig.Done), bounding the work done on
	// behalf of a query nobody is waiting for anymore.
	Done <-chan struct{}
	// BatchSize, when positive, builds the plan in batch mode: every
	// batch-capable operator has EnableBatch(BatchSize) called on it and
	// every exchange runs its producers under the batch protocol
	// (core.ExchangeConfig.BatchSize). The tree still answers Next — the
	// two protocols interoperate — but a consumer driving the root via
	// core.AsBatch gets the amortised batch path end to end. Zero keeps
	// classic record-at-a-time operation.
	BatchSize int
	// QueryID, when non-empty, stamps the query's identity into every
	// observability surface this build produces: the Analysis carries it
	// (EXPLAIN ANALYZE prints a "query <id>" header, live snapshots join
	// on it), a tracer, when attached, gets a "query <id>" track whose
	// begin/end instants bracket the run, and every exchange tags its
	// producer goroutines with pprof labels (query_id, op) — so traces,
	// logs, profiles and metrics scraped from the same process all join
	// on one key.
	QueryID string
	// Meter, when non-nil, attributes the query's resource usage — every
	// buffer fix the plan's scans and spills perform, device I/O, port
	// and wire traffic, batch-pool memory — to one core.ResourceMeter.
	// The build derives a metered Env and metered file handles once, so
	// the per-event cost at run time is a single atomic add.
	Meter *core.ResourceMeter
	// Estimates carries the cost pass's per-node cardinality estimates
	// (CostedPlan.Estimates) into the Analysis, so EXPLAIN ANALYZE can
	// print estimated next to observed rows. Keys must be nodes of the
	// tree being built. Nil when the plan was not costed.
	Estimates map[*Node]int64
	// Remote, when non-nil, is offered every distributable exchange node
	// (see Distributable) the build reaches on the coordinator-visible
	// spine of the plan — never inside a producer subtree. Returning
	// ok=true substitutes the returned iterator for the whole exchange
	// subtree: its producers execute elsewhere (a volcano-worker fleet)
	// and the iterator is the receiving end of the wire. Returning
	// ok=false builds the node locally as usual. Instrumentation,
	// tracing and batch configuration wrap the substituted iterator the
	// same way they wrap a local exchange.
	Remote RemoteBinder
}

// RemoteBinder intercepts distributable exchange nodes during a build.
// path locates the node in the tree (see NodeAtPath).
type RemoteBinder func(path string, n *Node) (core.Iterator, bool, error)

// BuildWith instantiates the plan with the given options. The *Analysis
// is non-nil iff o.Analyze or o.Metrics is set.
func BuildWith(env *core.Env, cat Catalog, n *Node, o BuildOptions) (core.Iterator, *Analysis, error) {
	if o.Tracer.Enabled() && o.QueryID != "" {
		// One instant on a query-named track: every event the run emits
		// lands in the same trace file, and the track name carries the ID
		// clients saw in X-Volcano-Query-Id, so a Chrome/Perfetto view
		// joins with the server's slow-query log and response trailers.
		o.Tracer.NewTrack("query "+o.QueryID).Instant("query", "begin")
	}
	if o.Meter != nil {
		// One derived Env up front: CreateTemp (sort/hash/aggregate
		// spills) and every scan handle built below attribute to the meter
		// with no per-record overhead beyond the atomic adds themselves.
		env = env.WithMeter(o.Meter)
	}
	if o.Analyze || o.Metrics.Enabled() {
		return buildObserved(env, cat, n, 0, o)
	}
	it, err := build(&buildCtx{env: env, cat: cat, tracer: o.Tracer, done: o.Done, batch: o.BatchSize, queryID: o.QueryID, remote: o.Remote}, n)
	return it, nil, err
}

// BuildObserved is the full observability build: EXPLAIN ANALYZE
// instrumentation, optional event tracing, and per-operator Next
// latency histograms registered on the metrics registry (family
// volcano_op_next_seconds, labelled by operator kind and plan-node
// position) so a live scraper sees the operators of the running query.
// Either tr or mr (or both) may be nil; with both nil it is
// BuildAnalyzed.
func BuildObserved(env *core.Env, cat Catalog, n *Node, tr *trace.Tracer, mr *metrics.Registry) (core.Iterator, *Analysis, error) {
	return buildObserved(env, cat, n, 0, BuildOptions{Analyze: true, Tracer: tr, Metrics: mr})
}

// Build instantiates the plan into an iterator tree.
func Build(env *core.Env, cat Catalog, n *Node) (core.Iterator, error) {
	return build(&buildCtx{env: env, cat: cat}, n)
}

// BuildTraced is Build with event tracing: every operator is wrapped in
// an instrumentation adapter recording open/next/close spans onto the
// tracer, and every exchange (and the producer subtrees it forks at run
// time) emits its protocol events — spawn, packet push/pop, token waits,
// end-of-stream, shutdown handshake — onto per-goroutine tracks.
func BuildTraced(env *core.Env, cat Catalog, n *Node, tr *trace.Tracer) (core.Iterator, error) {
	return build(&buildCtx{env: env, cat: cat, tracer: tr}, n)
}

// BuildAnalyzedTraced combines EXPLAIN ANALYZE instrumentation with
// event tracing; the two share one set of wrappers, so the trace and the
// aggregate counters describe exactly the same run.
func BuildAnalyzedTraced(env *core.Env, cat Catalog, n *Node, tr *trace.Tracer) (core.Iterator, *Analysis, error) {
	return buildAnalyzed(env, cat, n, tr)
}

// build instantiates one node, adding instrumentation when requested.
func build(ctx *buildCtx, n *Node) (core.Iterator, error) {
	var it core.Iterator
	var err error
	bound := false
	if ctx.remote != nil && n.Kind == KindExchange && Distributable(n) {
		// Offer the cut to the coordinator: a bound exchange's producers
		// run on remote workers and it is replaced, whole subtree and
		// all, by the receiving end of the wire.
		it, bound, err = ctx.remote(ctx.path, n)
		if err != nil {
			return nil, err
		}
	}
	if !bound {
		it, err = buildNode(ctx, n)
		if err != nil {
			return it, err
		}
	}
	// Batch mode: configure the raw operator before any instrumentation
	// wrap, so the whole tree switches protocol uniformly. Operators
	// without batch support (or exchange endpoints, configured through
	// their hub's state record) simply keep answering Next.
	if ctx.batch > 0 {
		if bc, ok := it.(core.BatchConfigurable); ok {
			bc.EnableBatch(ctx.batch)
		}
	}
	if ctx.analysis != nil {
		st := ctx.analysis.stats[n]
		if st == nil {
			return it, nil
		}
		inst := core.InstrumentWith(it, n.Kind.String(), st)
		if ctx.tracer.Enabled() {
			inst.WithTracer(ctx.tracer)
		}
		// Parallel instances share the node's histogram, like OpStats.
		inst.WithHistogram(ctx.analysis.hists[n])
		return inst, nil
	}
	if ctx.tracer.Enabled() {
		return core.Instrument(it, n.Kind.String()).WithTracer(ctx.tracer), nil
	}
	return it, nil
}

func buildNode(ctx *buildCtx, n *Node) (core.Iterator, error) {
	switch n.Kind {
	case KindScan:
		f, err := ctx.cat.Lookup(n.Table)
		if err != nil {
			return nil, err
		}
		return core.NewFileScan(meteredFile(ctx, f), nil, n.ReadAhead)

	case KindPartitionedScan:
		name := fmt.Sprintf("%s.%d", n.Table, ctx.partition)
		f, err := ctx.cat.Lookup(name)
		if err != nil {
			return nil, err
		}
		return core.NewFileScan(meteredFile(ctx, f), nil, n.ReadAhead)

	case KindIndexScan:
		ic, ok := ctx.cat.(IndexCatalog)
		if !ok {
			return nil, fmt.Errorf("plan: catalog has no index support (iscan %s)", n.IndexName)
		}
		tree, err := ic.LookupIndex(n.IndexName)
		if err != nil {
			return nil, err
		}
		f, err := ctx.cat.Lookup(n.Table)
		if err != nil {
			return nil, err
		}
		var lo, hi []byte
		if n.LoKey != nil {
			lo = btree.EncodeKey(record.Int(*n.LoKey))
		}
		if n.HiKey != nil {
			hi = btree.EncodeKey(record.Int(*n.HiKey))
		}
		// The fetch side of the index scan is metered through the file
		// handle; the B-tree's own page fixes go through the tree's pool
		// reference and stay process-global (the tree is a shared,
		// mutex-guarded structure, not a per-query handle).
		return core.NewIndexScan(tree, meteredFile(ctx, f), nil, lo, hi, true, true)

	case KindFilter:
		in, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return core.NewFilterExpr(in, n.Pred, n.Mode)

	case KindProject:
		in, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return core.NewProjectExprs(ctx.env, in, n.Exprs, n.Names, n.Mode)

	case KindSort:
		in, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		spec := n.SortBy
		if n.SortTerms != nil {
			if spec, err = resolveSort(in.Schema(), n.SortTerms); err != nil {
				return nil, err
			}
		}
		return core.NewSort(ctx.env, in, spec), nil

	case KindDistinct:
		in, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		if n.Algo == AlgoSort {
			return core.NewSortDistinct(ctx.env, in)
		}
		return core.NewHashDistinct(ctx.env, in)

	case KindAggregate:
		in, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		groupBy := n.GroupBy
		if n.GroupTerms != nil {
			if groupBy, err = resolveKey(in.Schema(), n.GroupTerms); err != nil {
				return nil, err
			}
		}
		aggs := n.Aggs
		if n.AggTerms != nil {
			aggs = append([]core.AggSpec(nil), n.Aggs...)
			for i, t := range n.AggTerms {
				if aggs[i].Func == core.AggCount {
					continue
				}
				key, err := resolveKey(in.Schema(), []Term{t})
				if err != nil {
					return nil, err
				}
				aggs[i].Field = key[0]
			}
		}
		if n.Algo == AlgoSort {
			spec := make([]record.SortSpec, len(groupBy))
			for i, f := range groupBy {
				spec[i] = record.SortSpec{Field: f}
			}
			return core.NewSortAggregate(ctx.env, core.NewSort(ctx.env, in, spec), groupBy, aggs)
		}
		return core.NewHashAggregate(ctx.env, in, groupBy, aggs)

	case KindMatch:
		l, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		r, err := build(ctx.in(1), n.Inputs[1])
		if err != nil {
			return nil, err
		}
		lk, rk := n.LeftKey, n.RightKey
		if n.AllFieldKeys {
			lk = allFieldsKey(l.Schema())
			rk = allFieldsKey(r.Schema())
		}
		if n.LeftTerms != nil {
			if lk, err = resolveKey(l.Schema(), n.LeftTerms); err != nil {
				return nil, err
			}
		}
		if n.RightTerms != nil {
			if rk, err = resolveKey(r.Schema(), n.RightTerms); err != nil {
				return nil, err
			}
		}
		if n.Algo == AlgoSort {
			return core.NewMergeMatchSorted(ctx.env, n.MatchOp, l, r, lk, rk)
		}
		return core.NewHashMatch(ctx.env, n.MatchOp, l, r, lk, rk)

	case KindNestedLoops:
		l, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		r, err := build(ctx.in(1), n.Inputs[1])
		if err != nil {
			return nil, err
		}
		return core.NewNestedLoops(ctx.env, l, r, n.Pred, n.Mode)

	case KindDivision:
		l, err := build(ctx.in(0), n.Inputs[0])
		if err != nil {
			return nil, err
		}
		r, err := build(ctx.in(1), n.Inputs[1])
		if err != nil {
			return nil, err
		}
		quot, div, divis := n.QuotKey, n.DivKey, n.DivisKey
		if n.QuotTerms != nil {
			if quot, err = resolveKey(l.Schema(), n.QuotTerms); err != nil {
				return nil, err
			}
		}
		if n.DivTerms != nil {
			if div, err = resolveKey(l.Schema(), n.DivTerms); err != nil {
				return nil, err
			}
		}
		if n.DivisTerms != nil {
			if divis, err = resolveKey(r.Schema(), n.DivisTerms); err != nil {
				return nil, err
			}
		}
		if n.Algo == AlgoSort {
			return core.NewSortDivision(ctx.env, l, r, quot, div, divis)
		}
		return core.NewHashDivision(ctx.env, l, r, quot, div, divis)

	case KindExchange:
		return buildExchange(ctx, n)

	case KindChoosePlan:
		if n.Choose == nil || len(n.Inputs) == 0 {
			return nil, fmt.Errorf("plan: chooseplan node without decision spec")
		}
		alts := make([]core.Iterator, len(n.Inputs))
		for i := range n.Inputs {
			alt, err := build(ctx.in(i), n.Inputs[i])
			if err != nil {
				return nil, err
			}
			alts[i] = alt
		}
		spec := n.Choose
		cat := ctx.cat
		cp, err := core.NewChoosePlan(alts, func() (int, error) {
			// The decision runs at Open against the catalog's stats *now*,
			// not the ones the cost pass planned from: a cached plan whose
			// build side has grown past the threshold switches strategy
			// without being re-costed.
			if sc, ok := cat.(StatsCatalog); ok {
				if st, ok := sc.LookupStats(spec.Table); ok {
					if int64(st.Records) <= spec.Threshold {
						return spec.Small, nil
					}
					return spec.Large, nil
				}
			}
			return spec.Default, nil
		})
		if err != nil {
			return nil, err
		}
		if ctx.analysis != nil {
			an, node := ctx.analysis, n
			cp.OnChoose(func(i int) { an.setChoice(node, i) })
		}
		return cp, nil

	default:
		return nil, fmt.Errorf("plan: unknown node kind %d", n.Kind)
	}
}

// buildExchange instantiates an exchange node: the child subtree template
// is built once per producer with the producer index in scope, so
// partitioned scans resolve to their partition files.
func buildExchange(ctx *buildCtx, n *Node) (core.Iterator, error) {
	o := n.X
	if o == nil {
		return nil, fmt.Errorf("plan: exchange node without options")
	}
	// Determine the schema by building a probe instance of the subtree.
	probe, err := build(&buildCtx{env: ctx.env, cat: ctx.cat, partition: 0}, n.Inputs[0])
	if err != nil {
		return nil, err
	}
	schema := probe.Schema()

	// Resolve parser-supplied field terms against the producer schema into
	// locals: the Node (and its XOpts) may be a cached template shared by
	// concurrent builds, so instantiation must never write to it.
	hashKeys, mergeSort := o.HashKeys, o.MergeSort
	if n.HashTerms != nil {
		if hashKeys, err = resolveKey(schema, n.HashTerms); err != nil {
			return nil, err
		}
	}
	if n.MergeTerms != nil {
		if mergeSort, err = resolveSort(schema, n.MergeTerms); err != nil {
			return nil, err
		}
	}

	cfg := core.ExchangeConfig{
		Schema:      schema,
		Producers:   o.Producers,
		Consumers:   o.Consumers,
		PacketSize:  o.PacketSize,
		FlowControl: o.FlowControl,
		Slack:       o.Slack,
		Broadcast:   o.Broadcast,
		Inline:      o.Inline,
		KeepStreams: o.KeepStreams,
		Fork:        o.Fork,
		ForkCost:    o.ForkCost,
		Tracer:      ctx.tracer,
		Done:        ctx.done,
		BatchSize:   ctx.batch,
		Meter:       ctx.env.Meter(),
		QueryID:     ctx.queryID,
		NewProducer: func(g int) (core.Iterator, error) {
			return build(&buildCtx{env: ctx.env, cat: ctx.cat, partition: g, analysis: ctx.analysis, tracer: ctx.tracer, done: ctx.done, batch: ctx.batch, queryID: ctx.queryID}, n.Inputs[0])
		},
	}
	if cfg.Consumers == 0 {
		cfg.Consumers = 1
	}
	if cfg.Producers == 0 {
		cfg.Producers = 1
	}
	switch {
	case o.Broadcast:
	case len(hashKeys) > 0:
		cfg.NewPartition = func(int) expr.Partitioner {
			return expr.HashPartition(schema, hashKeys, cfg.Consumers)
		}
	case o.UseRange:
		cfg.NewPartition = func(int) expr.Partitioner {
			return expr.RangePartition(schema, o.RangeCol, o.RangeCuts)
		}
	}
	x, err := core.NewExchange(cfg)
	if err != nil {
		return nil, err
	}
	if ctx.analysis != nil {
		ctx.analysis.addExchange(n, x)
	}
	if o.KeepStreams {
		if cfg.Consumers != 1 {
			return nil, fmt.Errorf("plan: merge exchange supports one consumer")
		}
		streams, err := x.ConsumerStreams(0)
		if err != nil {
			return nil, err
		}
		return core.NewMergeSpec(streams, mergeSort)
	}
	if cfg.Consumers != 1 {
		return nil, fmt.Errorf("plan: non-root exchange with %d consumers must be embedded by a parent exchange", cfg.Consumers)
	}
	return x.Consumer(0), nil
}

// meteredFile returns a handle on f attributing its buffer-pool activity
// to the build's meter, or f itself when the build has none.
func meteredFile(ctx *buildCtx, f *file.File) *file.File {
	if m := ctx.env.Meter(); m != nil {
		return f.WithMeter(m)
	}
	return f
}

func allFieldsKey(s *record.Schema) record.Key {
	key := make(record.Key, s.NumFields())
	for i := range key {
		key[i] = i
	}
	return key
}

// Run builds and executes the plan, returning decoded rows.
func Run(env *core.Env, cat Catalog, n *Node) ([][]record.Value, error) {
	it, err := Build(env, cat, n)
	if err != nil {
		return nil, err
	}
	return core.Collect(it)
}

// RunBatch builds the plan in batch mode and executes it through the
// batch protocol (NextBatch refills of the given size), returning
// decoded rows exactly like Run. Size <= 0 uses core.DefaultBatchSize.
func RunBatch(env *core.Env, cat Catalog, n *Node, size int) ([][]record.Value, error) {
	if size <= 0 {
		size = core.DefaultBatchSize
	}
	it, _, err := BuildWith(env, cat, n, BuildOptions{BatchSize: size})
	if err != nil {
		return nil, err
	}
	return core.CollectBatch(it, size)
}
