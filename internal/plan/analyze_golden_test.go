package plan

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// timingRE matches the wall-time values in an analyze report. The pool
// hit/miss/discard split depends on how producer refills interleave with
// consumer returns, so it is normalized too. Everything else — rows,
// calls, packets, records, buffer counters — is deterministic for a
// fixed plan over fixed data.
var timingRE = regexp.MustCompile(`(open|next|close|stall|wait|p50|p95|p99)=[^] }\n]+`)
var poolRE = regexp.MustCompile(`pool=\d+h/\d+m/\d+d`)

func normalizeTimings(s string) string {
	return poolRE.ReplaceAllString(timingRE.ReplaceAllString(s, "$1=T"), "pool=P")
}

// TestAnalyzeGoldenOutput pins the whole EXPLAIN ANALYZE report for a
// parallel plan: tree shape, per-operator counters, exchange port lines
// and the buffer footer. The plan is chosen so every non-time counter is
// deterministic: three disjoint partitions of 200 rows each, packet size
// 50 dividing 200 evenly, and a pool large enough that nothing evicts.
// Regenerate with: go test ./internal/plan -run TestAnalyzeGoldenOutput -update
func TestAnalyzeGoldenOutput(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 600, 3)
	n, err := Parse("pscan nums 3 | exchange producers=3 packet=50 | agg group v compute count")
	if err != nil {
		t.Fatal(err)
	}
	it, an, err := BuildAnalyzed(db.env, db.cat, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Drain(it); err != nil {
		t.Fatal(err)
	}
	got := normalizeTimings(an.String())

	golden := filepath.Join("testdata", "analyze.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("analyze report drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCostedAnalyzeGolden pins the EXPLAIN ANALYZE report of a *costed*
// run: the planner-chosen exchange fan-out, the est= column next to the
// observed rows on every operator, and the chosen= line under the
// choose-plan node. The plan leaves its knobs open on purpose — the
// report is the proof that the costing pass filled them.
// Regenerate with: go test ./internal/plan -run TestCostedAnalyzeGolden -update
func TestCostedAnalyzeGolden(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 50, 5)
	db.loadPartitioned(t, "nums", 600, 3)
	tpl, err := Compile("with d = scan dept\npscan nums 3 | exchange packet=50 | join hash d on v = dno")
	if err != nil {
		t.Fatal(err)
	}
	stripKnobs(tpl.root)
	cp := tpl.Cost(db.cat, nil)
	it, an, err := BuildWith(db.env, db.cat, cp.Template.Root(), BuildOptions{
		Analyze:   true,
		Estimates: cp.Estimates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Drain(it); err != nil {
		t.Fatal(err)
	}
	got := normalizeTimings(an.String())

	golden := filepath.Join("testdata", "analyze_cost.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("costed analyze report drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
