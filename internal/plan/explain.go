package plan

import (
	"fmt"
	"strings"

	"repro/internal/record"
)

// Explain renders the plan tree as an indented outline.
func Explain(n *Node) string {
	var sb strings.Builder
	explain(&sb, n, 0)
	return sb.String()
}

func explain(sb *strings.Builder, n *Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(describe(n))
	sb.WriteByte('\n')
	for _, in := range n.Inputs {
		explain(sb, in, depth+1)
	}
}

func describe(n *Node) string {
	switch n.Kind {
	case KindScan:
		return fmt.Sprintf("scan %s", n.Table)
	case KindPartitionedScan:
		return fmt.Sprintf("pscan %s [%d partitions]", n.Table, n.Partitions)
	case KindIndexScan:
		bounds := ""
		if n.LoKey != nil {
			bounds += fmt.Sprintf(" from %d", *n.LoKey)
		}
		if n.HiKey != nil {
			bounds += fmt.Sprintf(" to %d", *n.HiKey)
		}
		return fmt.Sprintf("iscan %s via %s%s", n.Table, n.IndexName, bounds)
	case KindFilter:
		return fmt.Sprintf("filter (%s) [%s]", n.Pred, n.Mode)
	case KindProject:
		return fmt.Sprintf("project %s", strings.Join(n.Exprs, ", "))
	case KindSort:
		if n.SortTerms != nil {
			return fmt.Sprintf("sort %s", termsString(n.SortTerms, true))
		}
		return fmt.Sprintf("sort %s", sortSpecString(n.SortBy))
	case KindDistinct:
		return fmt.Sprintf("distinct [%s]", n.Algo)
	case KindAggregate:
		parts := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			parts[i] = fmt.Sprintf("%s($%d)", a.Func, a.Field)
		}
		return fmt.Sprintf("aggregate group=%v %s [%s]", n.GroupBy, strings.Join(parts, ","), n.Algo)
	case KindMatch:
		if n.AllFieldKeys {
			return fmt.Sprintf("%s [%s]", n.MatchOp, n.Algo)
		}
		if n.LeftTerms != nil {
			return fmt.Sprintf("%s on %s=%s [%s]", n.MatchOp,
				termsString(n.LeftTerms, false), termsString(n.RightTerms, false), n.Algo)
		}
		return fmt.Sprintf("%s on %v=%v [%s]", n.MatchOp, n.LeftKey, n.RightKey, n.Algo)
	case KindNestedLoops:
		if n.Pred == "" {
			return "cartesian product"
		}
		return fmt.Sprintf("nested loops (%s)", n.Pred)
	case KindDivision:
		return fmt.Sprintf("division quot=%v div=%v [%s]", n.QuotKey, n.DivKey, n.Algo)
	case KindExchange:
		o := n.X
		var opts []string
		opts = append(opts, fmt.Sprintf("producers=%d consumers=%d", o.Producers, max1(o.Consumers)))
		if o.PacketSize != 0 {
			opts = append(opts, fmt.Sprintf("packet=%d", o.PacketSize))
		}
		if o.FlowControl {
			opts = append(opts, fmt.Sprintf("flow=on slack=%d", o.Slack))
		}
		if o.Broadcast {
			opts = append(opts, "broadcast")
		}
		if o.Inline {
			opts = append(opts, "inline")
		}
		if o.KeepStreams {
			spec := sortSpecString(o.MergeSort)
			if n.MergeTerms != nil {
				spec = termsString(n.MergeTerms, true)
			}
			opts = append(opts, fmt.Sprintf("merge %s", spec))
		}
		if len(o.HashKeys) > 0 {
			opts = append(opts, fmt.Sprintf("partition=hash%v", o.HashKeys))
		}
		if o.UseRange {
			opts = append(opts, fmt.Sprintf("partition=range($%d)", o.RangeCol))
		}
		return "exchange " + strings.Join(opts, " ")
	case KindChoosePlan:
		if n.Choose == nil {
			return "chooseplan"
		}
		labels := n.Choose.Labels
		if len(labels) == 0 {
			labels = make([]string, len(n.Inputs))
			for i := range labels {
				labels[i] = fmt.Sprintf("alt%d", i)
			}
		}
		return fmt.Sprintf("chooseplan %s table=%s threshold=%d",
			strings.Join(labels, "|"), n.Choose.Table, n.Choose.Threshold)
	default:
		return n.Kind.String()
	}
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// termsString renders unresolved field terms; withDir appends asc/desc.
func termsString(terms []Term, withDir bool) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		ref := t.Name
		if !t.ByName {
			ref = fmt.Sprintf("$%d", t.Index)
		}
		if withDir {
			dir := " asc"
			if t.Desc {
				dir = " desc"
			}
			ref += dir
		}
		parts[i] = ref
	}
	return strings.Join(parts, ", ")
}

func sortSpecString(spec []record.SortSpec) string {
	parts := make([]string, len(spec))
	for i, s := range spec {
		dir := "asc"
		if s.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("$%d %s", s.Field, dir)
	}
	return strings.Join(parts, ", ")
}
