package plan

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage/btree"
	"repro/internal/storage/device"
)

// TestBuildObservedHistograms checks the metrics-registry path of
// BuildObserved: operator latency lands in registry-owned histograms
// (one child per node, labelled op + position) and the analyze report
// renders quantiles from them.
func TestBuildObservedHistograms(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 200, 2)
	n, err := Parse("pscan nums 2 | exchange producers=2 | agg group v compute count")
	if err != nil {
		t.Fatal(err)
	}
	mr := metrics.NewRegistry()
	it, an, err := BuildObserved(db.env, db.cat, n, nil, mr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Drain(it); err != nil {
		t.Fatal(err)
	}
	if s := an.Latency(n); s.Count() == 0 {
		t.Fatal("root node recorded no Next latency")
	}
	var sb strings.Builder
	if err := mr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`volcano_op_next_seconds_bucket{node="0",op="aggregate",le="+Inf"}`,
		`node="1",op="exchange"`,
		`node="2",op="pscan"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	report := an.String()
	if !strings.Contains(report, "p50=") || !strings.Contains(report, "p99=") {
		t.Fatalf("analyze report missing quantiles:\n%s", report)
	}
}

// TestLiveScrapeDuringParallelQuery is the acceptance criterion run as
// a test: a parallel query executes while an HTTP client GETs /metrics
// mid-run; every scrape must be well-formed exposition covering the
// buffer, device, btree, exchange and operator families.
func TestLiveScrapeDuringParallelQuery(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 4000, 4)

	mr := metrics.NewRegistry()
	db.env.Pool.RegisterMetrics(mr)
	device.RegisterMetrics(mr)
	btree.RegisterMetrics(mr)
	core.RegisterMetrics(mr)

	srv, err := metrics.Serve("127.0.0.1:0", mr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n, err := Parse("pscan nums 4 | exchange producers=4 flow=on slack=2 packet=16 | agg group v compute count | sort v")
	if err != nil {
		t.Fatal(err)
	}
	it, _, err := BuildObserved(db.env, db.cat, n, nil, mr)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, derr := core.Drain(it)
		done <- derr
	}()

	// Scrape continuously until the query finishes, then once more.
	scrape := func() map[string]int {
		resp, err := http.Get("http://" + srv.Addr + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		fams, perr := metrics.ParseText(strings.NewReader(string(body)))
		if perr != nil {
			t.Fatalf("mid-run scrape is not valid exposition: %v\n%s", perr, body)
		}
		return fams
	}
	var last map[string]int
	running := true
	for running {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			last = scrape()
		}
	}
	last = scrape()
	for _, fam := range []string{
		"volcano_buffer_fixes_total",
		"volcano_buffer_pinned_frames",
		"volcano_device_page_reads_total",
		"volcano_btree_page_fetches_total",
		"volcano_exchange_packets_total",
		"volcano_exchange_producers_live",
		"volcano_op_next_seconds",
	} {
		if last[fam] == 0 {
			t.Errorf("final scrape missing family %s", fam)
		}
	}
}
