package plan

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
)

// stripKnobs removes every knob the costing pass can fill, turning an
// explicit corpus plan into the knobless form a user would write when
// trusting the planner: exchange producer counts and packet sizes
// revert to "unset", match algorithms to "unchosen".
func stripKnobs(n *Node) {
	if n.X != nil {
		n.X.ProducersSet = false
		n.X.Producers = 1
		n.X.PacketSize = 0
	}
	n.AlgoSet = false
	for _, in := range n.Inputs {
		stripKnobs(in)
	}
}

// findChoose returns every choose-plan node in a costed tree, pre-order.
func findChoose(n *Node) []*Node {
	var out []*Node
	if n.Kind == KindChoosePlan {
		out = append(out, n)
	}
	for _, in := range n.Inputs {
		out = append(out, findChoose(in)...)
	}
	return out
}

// TestCostMetamorphicCorpus is the planner's metamorphic property over
// the differential corpus: stripping every knob the costing pass can
// fill and letting it re-pick them must not change any result set —
// in row mode or at any batch size. This is what makes the pass safe to
// run on every server query: whatever parallelism, packet size, or
// choose-plan strategy it selects, the answer is the text plan's answer.
func TestCostMetamorphicCorpus(t *testing.T) {
	db := newDiffDB(t)
	chooseSeen := false
	for _, tc := range diffCorpus {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Parse(tc.script)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			refRows, err := Run(db.env, db.cat, ref)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			want := renderSorted(refRows)

			tpl, err := Compile(tc.script)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			stripKnobs(tpl.root)
			cp := tpl.Cost(db.cat, nil)
			root := cp.Template.Root()
			if len(findChoose(root)) > 0 {
				chooseSeen = true
			}
			costedRows, err := Run(db.env, db.cat, root)
			if err != nil {
				t.Fatalf("costed run: %v", err)
			}
			if got := renderSorted(costedRows); strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("costed plan changed the row-mode result:\nplan:\n%s", Explain(root))
			}
			for _, size := range diffBatchSizes {
				batchRows, err := RunBatch(db.env, db.cat, root, size)
				if err != nil {
					t.Fatalf("costed batch size %d: %v", size, err)
				}
				if got := renderSorted(batchRows); strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("costed plan changed the batch-%d result:\nplan:\n%s", size, Explain(root))
				}
			}
			if pinned := db.pool.PinnedFrames(); pinned != 0 {
				t.Fatalf("%d frames still pinned after costed runs", pinned)
			}
		})
	}
	if !chooseSeen {
		t.Fatalf("no corpus plan produced a choose-plan node — the metamorphic property never exercised one")
	}
}

// TestCostFillsExchangeDOP pins the structural planning rule: an
// exchange whose producer count the text omits gets the partition count
// of the pscan below it (anything else would duplicate or underread a
// non-partitioned subtree), while explicit counts are left alone.
func TestCostFillsExchangeDOP(t *testing.T) {
	db := newDiffDB(t)
	cases := []struct {
		script    string
		producers int
		packet    int // 0 = don't check
	}{
		{"pscan nums 4 | exchange", 4, 16},           // 500 rows -> small packets
		{"pscan nums 4 | exchange packet=16", 4, 16}, // explicit packet kept
		{"pscan nums 4 | exchange producers=2 packet=16", 2, 16},
		{"scan emp | exchange", 1, 0}, // no pscan below: fan-out must stay 1
	}
	for _, tc := range cases {
		tpl, err := Compile(tc.script)
		if err != nil {
			t.Fatalf("compile %q: %v", tc.script, err)
		}
		cp := tpl.Cost(db.cat, nil)
		x := cp.Template.Root().X
		if x == nil {
			t.Fatalf("%q: costed root is not an exchange", tc.script)
		}
		if x.Producers != tc.producers {
			t.Errorf("%q: producers = %d, want %d", tc.script, x.Producers, tc.producers)
		}
		if tc.packet != 0 && x.PacketSize != tc.packet {
			t.Errorf("%q: packet = %d, want %d", tc.script, x.PacketSize, tc.packet)
		}
	}
	// The costed template's goroutine footprint must reflect the chosen
	// fan-out: admission control weighs what will actually run.
	tpl, err := Compile("pscan nums 4 | exchange")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tpl.Cost(db.cat, nil).Template.ProducerGoroutines(), tpl.ProducerGoroutines(); got <= want {
		t.Errorf("costed ProducerGoroutines = %d, want > uncosted %d", got, want)
	}
}

// TestCostChoosePlanInsertion pins when the pass defers the hash-vs-
// merge decision to Open: only for equality matches whose algorithm the
// text left unchosen and whose build side resolves to a catalog table.
func TestCostChoosePlanInsertion(t *testing.T) {
	db := newDiffDB(t)

	tpl, err := Compile("with d = scan dept\nscan emp | join hash d on dept = dno")
	if err != nil {
		t.Fatal(err)
	}
	stripKnobs(tpl.root)
	cp := tpl.Cost(db.cat, nil)
	chooses := findChoose(cp.Template.Root())
	if len(chooses) != 1 {
		t.Fatalf("costed plan has %d choose-plan nodes, want 1:\n%s", len(chooses), Explain(cp.Template.Root()))
	}
	ch := chooses[0]
	if ch.Choose == nil || ch.Choose.Table != "dept" {
		t.Fatalf("choose spec = %+v, want table dept", ch.Choose)
	}
	if got := strings.Join(ch.Choose.Labels, "|"); got != "hash|merge" {
		t.Fatalf("choose labels = %q, want hash|merge", got)
	}
	if len(ch.Inputs) != 2 {
		t.Fatalf("choose has %d alternatives, want 2", len(ch.Inputs))
	}
	if ch.Inputs[0] == ch.Inputs[1] || ch.Inputs[0].Inputs[0] == ch.Inputs[1].Inputs[0].Inputs[0] {
		t.Fatalf("alternatives share node pointers — per-node stats would collide")
	}
	merge := ch.Inputs[1]
	if merge.Algo != AlgoSort || !merge.AlgoSet {
		t.Fatalf("alternative 1 algo = %v (set=%v), want explicit sort", merge.Algo, merge.AlgoSet)
	}
	for i, in := range merge.Inputs {
		if in.Kind != KindSort {
			t.Fatalf("merge alternative input %d is %v, want a sort", i, in.Kind)
		}
	}
	if _, ok := cp.Estimates[ch]; !ok {
		t.Fatalf("choose-plan node has no cardinality estimate")
	}

	// An explicit algorithm is a user decision: never second-guessed.
	tpl2, err := Compile("with d = scan dept\nscan emp | join merge d on dept = dno")
	if err != nil {
		t.Fatal(err)
	}
	if got := findChoose(tpl2.Cost(db.cat, nil).Template.Root()); len(got) != 0 {
		t.Fatalf("explicit merge join was wrapped in a choose-plan")
	}
}

// TestChoosePlanDecisionByStats drives both sides of the decision
// function through the catalog it consults at Open: under the
// threshold the hash alternative runs, over it the merge alternative
// does — same rows either way.
func TestChoosePlanDecisionByStats(t *testing.T) {
	const script = "with d = scan dept\nscan emp | join hash d on dept = dno"
	db := newDiffDB(t)
	ref, err := Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	refRows, err := Run(db.env, db.cat, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderSorted(refRows)

	run := func(t *testing.T, threshold int64, wantChoice int, wantLabel string) {
		old := DefaultHashBuildThreshold
		DefaultHashBuildThreshold = threshold
		defer func() { DefaultHashBuildThreshold = old }()
		tpl, err := Compile(script)
		if err != nil {
			t.Fatal(err)
		}
		stripKnobs(tpl.root)
		cp := tpl.Cost(db.cat, nil)
		it, an, err := BuildWith(db.env, db.cat, cp.Template.Root(), BuildOptions{
			Analyze:   true,
			Estimates: cp.Estimates,
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := drainValues(it)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderSorted(rows); strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("threshold %d changed the result set", threshold)
		}
		chooses := findChoose(cp.Template.Root())
		if len(chooses) != 1 {
			t.Fatalf("%d choose-plan nodes, want 1", len(chooses))
		}
		if got := an.Choice(chooses[0]); got != wantChoice {
			t.Fatalf("choice = %d, want %d (%s)", got, wantChoice, wantLabel)
		}
		if report := an.String(); !strings.Contains(report, "chosen="+wantLabel) {
			t.Fatalf("analyze report does not name the chosen alternative %q:\n%s", wantLabel, report)
		}
	}
	// dept has 4 records: threshold 100 keeps the hash build, threshold 3
	// tips the decision to sort-merge.
	t.Run("hash", func(t *testing.T) { run(t, 100, 0, "hash") })
	t.Run("merge", func(t *testing.T) { run(t, 3, 1, "merge") })
}

// drainValues drains an iterator through Open/Next/Close, decoding
// every record.
func drainValues(it core.Iterator) ([][]record.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	sch := it.Schema()
	var rows [][]record.Value
	for {
		r, ok, err := it.Next()
		if err != nil {
			_ = it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		vals, err := sch.Decode(r.Data)
		r.Unfix()
		if err != nil {
			_ = it.Close()
			return nil, err
		}
		rows = append(rows, vals)
	}
	return rows, it.Close()
}

// TestCostMisEstimateFeedback closes the loop the server runs per cache
// entry: a selective predicate the model can't see mis-estimates by more
// than the factor, one re-cost with the observed cardinalities fixes it,
// and the corrected plan no longer trips the detector — exactly one
// re-plan, then convergence.
func TestCostMisEstimateFeedback(t *testing.T) {
	db := newDiffDB(t)
	tpl, err := Compile("scan emp | filter id < 1")
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(cp *CostedPlan) *Analysis {
		it, an, err := BuildWith(db.env, db.cat, cp.Template.Root(), BuildOptions{
			Analyze:   true,
			Estimates: cp.Estimates,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := drainValues(it); err != nil {
			t.Fatal(err)
		}
		return an
	}

	cp := tpl.Cost(db.cat, nil)
	an := runOnce(cp)
	node, est, obs, mis := cp.MisEstimated(an, MisEstimateFactor)
	if !mis {
		t.Fatalf("selective filter did not register as mis-estimated")
	}
	if node == nil || est <= obs {
		t.Fatalf("mis-estimate = node %v est %d obs %d; want an overestimate", node, est, obs)
	}

	// Re-cost with the observations folded back — the server does this by
	// discarding the cache entry's costed plan and re-deriving.
	observed := cp.Observed(an)
	if len(observed) == 0 {
		t.Fatalf("no observed cardinalities extracted")
	}
	cp2 := tpl.Cost(db.cat, observed)
	an2 := runOnce(cp2)
	if _, est2, obs2, mis2 := cp2.MisEstimated(an2, MisEstimateFactor); mis2 {
		t.Fatalf("re-costed plan still mis-estimated (est %d obs %d) — feedback did not converge", est2, obs2)
	}
}

// TestParseDOPBounds pins the parse-time validation of parallelism
// knobs: out-of-range values fail with a positioned ParseError before
// any build or admission decision sees them.
func TestParseDOPBounds(t *testing.T) {
	for _, tc := range []struct {
		script string
		frag   string
	}{
		{"pscan nums 2000", "exceeds max"},
		{"pscan nums 4 | exchange producers=0", "out of range"},
		{"pscan nums 4 | exchange producers=2000", "out of range"},
	} {
		_, err := Parse(tc.script)
		if err == nil {
			t.Fatalf("%q: parse succeeded, want DOP bound error", tc.script)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("%q: error %T is not a *ParseError: %v", tc.script, err, err)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%q: error %q does not mention %q", tc.script, err, tc.frag)
		}
	}
}
