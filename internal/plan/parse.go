package plan

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
)

// The plan language: one pipeline of stages separated by '|', optionally
// preceded by named sub-plans:
//
//	with depts = scan dept | filter budget > 100
//	scan emp
//	| filter salary > 1200 AND name LIKE 'a%'
//	| join hash depts on dept = id
//	| project name, salary * 1.1 as raised
//	| sort raised desc
//
// Stages:
//
//	scan TABLE
//	pscan TABLE N                  (partitioned scan; valid under exchange)
//	iscan TABLE INDEX [LO [HI]]    (B+-tree index scan, int key bounds)
//	filter [interpreted|compiled] EXPR
//	project [interpreted|compiled] EXPR [as NAME] {, ...}
//	sort FIELD [asc|desc] {, ...}
//	distinct [hash|sort]
//	agg [hash|sort] group FIELDS compute AGG {, AGG}
//	    AGG := count | sum(F) | min(F) | max(F) | avg(F)
//	join [hash|merge] NAME on L = R {, L = R}
//	join loops NAME on EXPR
//	semijoin|antijoin|leftouter|rightouter|fullouter [hash|merge] NAME on L = R {,...}
//	union|intersect|difference|antidifference [hash|merge] NAME
//	divide [hash|sort] NAME quot FIELDS div FIELDS on FIELDS
//	exchange [producers=N] [packet=K] [flow=on|off] [slack=S] [fork=central|tree]
//	         [forkcost=DUR] [partition=hash(FIELDS)|rr] [broadcast] [inline]
//	         [merge=FIELD [asc|desc]{,...}]
//
// FIELDS are field names or $indexes. Comments start with '#'.

// MaxDOP bounds plan-text degree-of-parallelism knobs (exchange producer
// counts and pscan partition counts). Values are validated at parse time
// with a positioned ParseError, so an absurd request ("producers=10e6")
// is rejected before the server's goroutine governor — or a build — ever
// sees it. The bound is far above any useful fan-out on one machine.
const MaxDOP = 1024

// Term is an unresolved field reference (by name or index) with an
// optional sort direction.
type Term struct {
	Name   string
	Index  int
	ByName bool
	Desc   bool
}

// resolveKey turns terms into field indices against a schema.
func resolveKey(s *record.Schema, terms []Term) (record.Key, error) {
	key := make(record.Key, len(terms))
	for i, t := range terms {
		idx := t.Index
		if t.ByName {
			idx = s.Index(t.Name)
			if idx < 0 {
				return nil, fmt.Errorf("plan: unknown field %q in %s", t.Name, s)
			}
		}
		if idx < 0 || idx >= s.NumFields() {
			return nil, fmt.Errorf("plan: field index %d out of range for %s", idx, s)
		}
		key[i] = idx
	}
	return key, nil
}

// resolveSort turns terms into sort specs against a schema.
func resolveSort(s *record.Schema, terms []Term) ([]record.SortSpec, error) {
	key, err := resolveKey(s, terms)
	if err != nil {
		return nil, err
	}
	spec := make([]record.SortSpec, len(terms))
	for i := range terms {
		spec[i] = record.SortSpec{Field: key[i], Desc: terms[i].Desc}
	}
	return spec, nil
}

// parseTerm parses "name", "$3", optionally followed by asc/desc.
func parseTerm(s string) (Term, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) == 0 || len(fields) > 2 {
		return Term{}, fmt.Errorf("plan: bad field term %q", s)
	}
	t := Term{}
	ref := fields[0]
	if strings.HasPrefix(ref, "$") {
		i, err := strconv.Atoi(ref[1:])
		if err != nil {
			return Term{}, fmt.Errorf("plan: bad field index %q", ref)
		}
		t.Index = i
	} else {
		t.Name, t.ByName = ref, true
	}
	if len(fields) == 2 {
		switch strings.ToLower(fields[1]) {
		case "asc":
		case "desc":
			t.Desc = true
		default:
			return Term{}, fmt.Errorf("plan: bad sort direction %q", fields[1])
		}
	}
	return t, nil
}

func parseTerms(s string) ([]Term, error) {
	var out []Term
	for _, part := range strings.Split(s, ",") {
		t, err := parseTerm(part)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ParseError locates a parse failure in the source script so callers —
// in particular the query server's 400 responses — can point at the
// offending line and stage instead of echoing a bare message.
type ParseError struct {
	Line  int    // 1-based source line the failing stage starts on (0 = whole script)
	Stage int    // 1-based stage index within its statement (0 = statement level)
	Op    string // stage keyword, "" when the stage never identified itself
	Err   error  // underlying cause; its "plan: " prefix is stripped in Error
}

// Error renders "plan: line L, stage S: cause".
func (e *ParseError) Error() string {
	msg := strings.TrimPrefix(e.Err.Error(), "plan: ")
	switch {
	case e.Line == 0:
		return "plan: " + msg
	case e.Stage == 0:
		return fmt.Sprintf("plan: line %d: %s", e.Line, msg)
	default:
		return fmt.Sprintf("plan: line %d, stage %d: %s", e.Line, e.Stage, msg)
	}
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

// srcStage is one pipeline stage with the source line it starts on.
type srcStage struct {
	text string
	line int
}

// srcStmt is one statement — a with-binding or the main pipeline — as a
// sequence of stages.
type srcStmt struct {
	stages []srcStage
	line   int
}

// splitSource performs the lexical phase shared by Parse and Normalize:
// strip '#' comments, trim whitespace, drop blank lines, attach
// continuation lines starting with '|' to the open statement, and split
// every statement into its '|'-separated stages, each tagged with the
// 1-based line it starts on. Empty stage texts are preserved so the
// parser can report them.
func splitSource(src string) []srcStmt {
	var stmts []srcStmt
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		cont := strings.HasPrefix(line, "|") && len(stmts) > 0
		if cont {
			line = line[1:]
		}
		var stages []srcStage
		for _, seg := range strings.Split(line, "|") {
			stages = append(stages, srcStage{text: strings.TrimSpace(seg), line: ln + 1})
		}
		if cont {
			last := &stmts[len(stmts)-1]
			last.stages = append(last.stages, stages...)
		} else {
			stmts = append(stmts, srcStmt{stages: stages, line: ln + 1})
		}
	}
	return stmts
}

// Normalize returns the canonical form of a plan script: comments and
// blank lines removed, continuation lines joined, stages separated by
// " | " and statements by newlines. Two sources with the same normal form
// parse identically (Parse operates on exactly the stage texts Normalize
// emits), which makes the normal form a sound plan-cache key; whitespace
// inside a stage — including inside string literals — is untouched.
func Normalize(src string) string {
	var sb strings.Builder
	for i, st := range splitSource(src) {
		if i > 0 {
			sb.WriteByte('\n')
		}
		for j, sg := range st.stages {
			if j > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(sg.text)
		}
	}
	return sb.String()
}

// Parse parses a plan-language script into a plan tree. Failures are
// reported as *ParseError carrying the offending line and stage.
func Parse(src string) (*Node, error) {
	named := map[string]*Node{}
	stmts := splitSource(src)
	if len(stmts) == 0 {
		return nil, &ParseError{Err: fmt.Errorf("plan: empty script")}
	}
	var main *Node
	for _, stmt := range stmts {
		first := stmt.stages[0]
		if strings.HasPrefix(first.text, "with ") {
			rest := strings.TrimPrefix(first.text, "with ")
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return nil, &ParseError{Line: stmt.line, Err: fmt.Errorf("plan: with-binding needs '=': %q", first.text)}
			}
			name := strings.TrimSpace(rest[:eq])
			stages := append([]srcStage{{text: strings.TrimSpace(rest[eq+1:]), line: first.line}}, stmt.stages[1:]...)
			node, err := parsePipeline(stages, named)
			if err != nil {
				return nil, err
			}
			named[name] = node
			continue
		}
		if main != nil {
			return nil, &ParseError{Line: stmt.line, Err: fmt.Errorf("plan: more than one main pipeline")}
		}
		node, err := parsePipeline(stmt.stages, named)
		if err != nil {
			return nil, err
		}
		main = node
	}
	if main == nil {
		return nil, &ParseError{Err: fmt.Errorf("plan: no main pipeline (only with-bindings)")}
	}
	return main, nil
}

func parsePipeline(stages []srcStage, named map[string]*Node) (*Node, error) {
	var cur *Node
	for i, st := range stages {
		if st.text == "" {
			return nil, &ParseError{Line: st.line, Stage: i + 1, Err: fmt.Errorf("plan: empty stage")}
		}
		node, err := parseStage(st.text, cur, named)
		if err != nil {
			head, _ := splitHead(st.text)
			return nil, &ParseError{Line: st.line, Stage: i + 1, Op: strings.ToLower(head), Err: err}
		}
		cur = node
	}
	return cur, nil
}

// splitHead splits "word rest..." -> ("word", "rest...").
func splitHead(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

func parseStage(st string, input *Node, named map[string]*Node) (*Node, error) {
	head, rest := splitHead(st)
	head = strings.ToLower(head)
	needInput := func() error {
		if input == nil {
			return fmt.Errorf("plan: %s needs an input stage", head)
		}
		return nil
	}
	switch head {
	case "scan":
		if input != nil {
			return nil, fmt.Errorf("plan: scan must be the first stage")
		}
		if rest == "" {
			return nil, fmt.Errorf("plan: scan needs a table name")
		}
		return &Node{Kind: KindScan, Table: rest}, nil

	case "pscan":
		if input != nil {
			return nil, fmt.Errorf("plan: pscan must be the first stage")
		}
		name, nstr := splitHead(rest)
		n, err := strconv.Atoi(nstr)
		if err != nil || name == "" || n < 1 {
			return nil, fmt.Errorf("plan: usage: pscan TABLE N")
		}
		if n > MaxDOP {
			return nil, fmt.Errorf("plan: pscan partition count %d exceeds max %d", n, MaxDOP)
		}
		return &Node{Kind: KindPartitionedScan, Table: name, Partitions: n}, nil

	case "iscan":
		// iscan TABLE INDEX [LO [HI]] — integer key bounds, inclusive.
		if input != nil {
			return nil, fmt.Errorf("plan: iscan must be the first stage")
		}
		parts := strings.Fields(rest)
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("plan: usage: iscan TABLE INDEX [LO [HI]]")
		}
		node := &Node{Kind: KindIndexScan, Table: parts[0], IndexName: parts[1]}
		if len(parts) >= 3 {
			lo, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("plan: bad iscan lower bound %q", parts[2])
			}
			node.LoKey = &lo
		}
		if len(parts) == 4 {
			hi, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("plan: bad iscan upper bound %q", parts[3])
			}
			node.HiKey = &hi
		}
		return node, nil

	case "filter":
		if err := needInput(); err != nil {
			return nil, err
		}
		mode, rest := parseMode(rest)
		if rest == "" {
			return nil, fmt.Errorf("plan: filter needs a predicate")
		}
		return &Node{Kind: KindFilter, Pred: rest, Mode: mode, Inputs: []*Node{input}}, nil

	case "project":
		if err := needInput(); err != nil {
			return nil, err
		}
		mode, rest := parseMode(rest)
		var exprs, names []string
		for _, item := range strings.Split(rest, ",") {
			item = strings.TrimSpace(item)
			name := ""
			if i := strings.LastIndex(strings.ToLower(item), " as "); i >= 0 {
				name = strings.TrimSpace(item[i+4:])
				item = strings.TrimSpace(item[:i])
			}
			if item == "" {
				return nil, fmt.Errorf("plan: empty projection item")
			}
			if name == "" {
				if e, err := expr.Parse(item); err == nil {
					if id, ok := e.(*expr.Ident); ok {
						name = id.Name
					}
				}
			}
			if name == "" {
				name = fmt.Sprintf("c%d", len(exprs))
			}
			exprs = append(exprs, item)
			names = append(names, name)
		}
		return &Node{Kind: KindProject, Exprs: exprs, Names: names, Mode: mode, Inputs: []*Node{input}}, nil

	case "sort":
		if err := needInput(); err != nil {
			return nil, err
		}
		terms, err := parseTerms(rest)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: KindSort, SortTerms: terms, Inputs: []*Node{input}}, nil

	case "distinct":
		if err := needInput(); err != nil {
			return nil, err
		}
		algo, err := parseAlgo(rest, AlgoHash)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: KindDistinct, Algo: algo, AlgoSet: strings.TrimSpace(rest) != "", Inputs: []*Node{input}}, nil

	case "agg":
		if err := needInput(); err != nil {
			return nil, err
		}
		return parseAgg(rest, input)

	case "join", "semijoin", "antijoin", "leftouter", "rightouter", "fullouter":
		if err := needInput(); err != nil {
			return nil, err
		}
		return parseJoin(head, rest, input, named)

	case "union", "intersect", "difference", "antidifference":
		if err := needInput(); err != nil {
			return nil, err
		}
		return parseSetOp(head, rest, input, named)

	case "divide":
		if err := needInput(); err != nil {
			return nil, err
		}
		return parseDivide(rest, input, named)

	case "exchange":
		if err := needInput(); err != nil {
			return nil, err
		}
		return parseExchange(rest, input)

	default:
		return nil, fmt.Errorf("plan: unknown stage %q", head)
	}
}

// parseMode strips an optional leading "interpreted"/"compiled" keyword
// selecting the support-function realisation (paper, §3).
func parseMode(rest string) (expr.Mode, string) {
	head, tail := splitHead(rest)
	switch strings.ToLower(head) {
	case "interpreted":
		return expr.Interpreted, tail
	case "compiled":
		return expr.Compiled, tail
	}
	return expr.Compiled, rest
}

func parseAlgo(s string, dflt Algo) (Algo, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return dflt, nil
	case "hash":
		return AlgoHash, nil
	case "sort", "merge":
		return AlgoSort, nil
	case "loops":
		return AlgoLoops, nil
	default:
		return 0, fmt.Errorf("plan: unknown algorithm %q", s)
	}
}

func parseAgg(rest string, input *Node) (*Node, error) {
	algo, algoSet := AlgoHash, false
	if head, r := splitHead(rest); head == "hash" || head == "sort" {
		algo, _ = parseAlgo(head, AlgoHash)
		algoSet = true
		rest = r
	}
	low := strings.ToLower(rest)
	gi := strings.Index(low, "group ")
	ci := strings.Index(low, " compute ")
	// ci must leave room for the group field list: "group compute x" has
	// the two keywords overlapping and no fields between them.
	if gi != 0 || ci < len("group ") {
		return nil, fmt.Errorf("plan: usage: agg [hash|sort] group FIELDS compute AGGS")
	}
	groupTerms, err := parseTerms(rest[len("group "):ci])
	if err != nil {
		return nil, err
	}
	var aggs []core.AggSpec
	var aggTerms []Term
	for _, item := range strings.Split(rest[ci+len(" compute "):], ",") {
		item = strings.TrimSpace(item)
		if strings.EqualFold(item, "count") {
			aggs = append(aggs, core.AggSpec{Func: core.AggCount})
			aggTerms = append(aggTerms, Term{Index: -1})
			continue
		}
		open := strings.Index(item, "(")
		closeP := strings.LastIndex(item, ")")
		if open < 0 || closeP < open {
			return nil, fmt.Errorf("plan: bad aggregate %q", item)
		}
		var fn core.AggFunc
		switch strings.ToLower(item[:open]) {
		case "sum":
			fn = core.AggSum
		case "min":
			fn = core.AggMin
		case "max":
			fn = core.AggMax
		case "avg":
			fn = core.AggAvg
		case "count":
			fn = core.AggCount
		default:
			return nil, fmt.Errorf("plan: unknown aggregate %q", item[:open])
		}
		t, err := parseTerm(item[open+1 : closeP])
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, core.AggSpec{Func: fn})
		aggTerms = append(aggTerms, t)
	}
	return &Node{
		Kind: KindAggregate, Algo: algo, AlgoSet: algoSet,
		GroupTerms: groupTerms, Aggs: aggs, AggTerms: aggTerms,
		Inputs: []*Node{input},
	}, nil
}

func parseJoin(op, rest string, input *Node, named map[string]*Node) (*Node, error) {
	algo, algoSet := AlgoHash, false
	if head, r := splitHead(rest); head == "hash" || head == "merge" || head == "loops" {
		a, err := parseAlgo(head, AlgoHash)
		if err != nil {
			return nil, err
		}
		algo = a
		algoSet = true
		rest = r
	}
	name, cond := splitHead(rest)
	right, ok := named[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown sub-plan %q (define it with 'with %s = ...')", name, name)
	}
	low := strings.ToLower(cond)
	if !strings.HasPrefix(low, "on ") {
		return nil, fmt.Errorf("plan: %s needs an 'on' clause", op)
	}
	cond = strings.TrimSpace(cond[3:])
	if algo == AlgoLoops {
		if op != "join" {
			return nil, fmt.Errorf("plan: loops algorithm supports only plain join")
		}
		return &Node{Kind: KindNestedLoops, Pred: cond, Inputs: []*Node{input, right}}, nil
	}
	var lterms, rterms []Term
	for _, pair := range strings.Split(cond, ",") {
		sides := strings.Split(pair, "=")
		if len(sides) != 2 {
			return nil, fmt.Errorf("plan: bad join condition %q", pair)
		}
		lt, err := parseTerm(sides[0])
		if err != nil {
			return nil, err
		}
		rt, err := parseTerm(sides[1])
		if err != nil {
			return nil, err
		}
		lterms = append(lterms, lt)
		rterms = append(rterms, rt)
	}
	matchOp := map[string]core.MatchOp{
		"join": core.MatchJoin, "semijoin": core.MatchSemi, "antijoin": core.MatchAnti,
		"leftouter": core.MatchLeftOuter, "rightouter": core.MatchRightOuter,
		"fullouter": core.MatchFullOuter,
	}[op]
	return &Node{
		Kind: KindMatch, MatchOp: matchOp, Algo: algo, AlgoSet: algoSet,
		LeftTerms: lterms, RightTerms: rterms,
		Inputs: []*Node{input, right},
	}, nil
}

func parseSetOp(op, rest string, input *Node, named map[string]*Node) (*Node, error) {
	algo, algoSet := AlgoHash, false
	if head, r := splitHead(rest); head == "hash" || head == "merge" || head == "sort" {
		a, err := parseAlgo(head, AlgoHash)
		if err != nil {
			return nil, err
		}
		algo = a
		algoSet = true
		rest = r
	}
	name := strings.TrimSpace(rest)
	right, ok := named[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown sub-plan %q", name)
	}
	matchOp := map[string]core.MatchOp{
		"union": core.MatchUnion, "intersect": core.MatchIntersect,
		"difference": core.MatchDifference, "antidifference": core.MatchAntiDifference,
	}[op]
	return &Node{
		Kind: KindMatch, MatchOp: matchOp, Algo: algo, AlgoSet: algoSet,
		AllFieldKeys: true,
		Inputs:       []*Node{input, right},
	}, nil
}

func parseDivide(rest string, input *Node, named map[string]*Node) (*Node, error) {
	algo, algoSet := AlgoHash, false
	if head, r := splitHead(rest); head == "hash" || head == "sort" {
		algo, _ = parseAlgo(head, AlgoHash)
		algoSet = true
		rest = r
	}
	name, rest := splitHead(rest)
	right, ok := named[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown sub-plan %q", name)
	}
	low := strings.ToLower(rest)
	qi := strings.Index(low, "quot ")
	di := strings.Index(low, " div ")
	oi := strings.Index(low, " on ")
	// Each keyword must leave room for the preceding field list, or the
	// slices below run backwards ("quot div x on y" overlaps them).
	if qi != 0 || di < len("quot ") || oi < di+len(" div ") {
		return nil, fmt.Errorf("plan: usage: divide [hash|sort] NAME quot FIELDS div FIELDS on FIELDS")
	}
	quot, err := parseTerms(rest[len("quot "):di])
	if err != nil {
		return nil, err
	}
	div, err := parseTerms(rest[di+len(" div ") : oi])
	if err != nil {
		return nil, err
	}
	divis, err := parseTerms(rest[oi+len(" on "):])
	if err != nil {
		return nil, err
	}
	return &Node{
		Kind: KindDivision, Algo: algo, AlgoSet: algoSet,
		QuotTerms: quot, DivTerms: div, DivisTerms: divis,
		Inputs: []*Node{input, right},
	}, nil
}

func parseExchange(rest string, input *Node) (*Node, error) {
	o := &XOpts{Producers: 1, Consumers: 1}
	var hashTerms, mergeTerms []Term
	for _, tok := range strings.Fields(rest) {
		kv := strings.SplitN(tok, "=", 2)
		key := strings.ToLower(kv[0])
		val := ""
		if len(kv) == 2 {
			val = kv[1]
		}
		switch key {
		case "producers":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("plan: bad producers=%q", val)
			}
			if n < 1 || n > MaxDOP {
				return nil, fmt.Errorf("plan: producers=%d out of range 1..%d", n, MaxDOP)
			}
			o.Producers = n
			o.ProducersSet = true
		case "packet":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("plan: bad packet=%q", val)
			}
			o.PacketSize = n
		case "flow":
			o.FlowControl = strings.EqualFold(val, "on")
		case "slack":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("plan: bad slack=%q", val)
			}
			o.Slack = n
		case "fork":
			switch strings.ToLower(val) {
			case "central":
				o.Fork = core.ForkCentral
			case "tree":
				o.Fork = core.ForkTree
			default:
				return nil, fmt.Errorf("plan: bad fork=%q", val)
			}
		case "forkcost":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("plan: bad forkcost=%q", val)
			}
			o.ForkCost = d
		case "partition":
			low := strings.ToLower(val)
			switch {
			case low == "rr":
			case strings.HasPrefix(low, "hash(") && strings.HasSuffix(val, ")"):
				terms, err := parseTerms(val[5 : len(val)-1])
				if err != nil {
					return nil, err
				}
				hashTerms = terms
			default:
				return nil, fmt.Errorf("plan: bad partition=%q", val)
			}
		case "broadcast":
			o.Broadcast = true
		case "inline":
			o.Inline = true
		case "merge":
			terms, err := parseTerms(strings.ReplaceAll(val, ":", " "))
			if err != nil {
				return nil, err
			}
			mergeTerms = terms
			o.KeepStreams = true
		default:
			return nil, fmt.Errorf("plan: unknown exchange option %q", tok)
		}
	}
	if o.Inline && o.Producers != 1 {
		// A linear pipeline has a single consumer tree; inline groups of
		// size > 1 need one consumer tree per member and can only be built
		// through the API (core.ExchangeConfig.Inline).
		return nil, fmt.Errorf("plan: inline exchange supports producers=1 in the plan language")
	}
	if o.Inline {
		o.Consumers = 1
	}
	return &Node{
		Kind: KindExchange, X: o,
		HashTerms: hashTerms, MergeTerms: mergeTerms,
		Inputs: []*Node{input},
	}, nil
}
