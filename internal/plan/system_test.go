package plan

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// TestSystemEndToEnd is the "whole system" test: a durable database with
// several tables and an index is created, saved, remounted cold, and then
// queried through the plan language with parallel scans, exchanges,
// joins, aggregation, division and index scans — with instrumentation on,
// asserting both results and pin balance at every step.
func TestSystemEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warehouse.vdb")

	ordersSchema := record.MustSchema(
		record.Field{Name: "oid", Type: record.TInt},
		record.Field{Name: "cust", Type: record.TInt},
		record.Field{Name: "item", Type: record.TInt},
		record.Field{Name: "qty", Type: record.TInt},
	)
	custSchema := record.MustSchema(
		record.Field{Name: "cid", Type: record.TInt},
		record.Field{Name: "region", Type: record.TInt},
	)
	const (
		nOrders = 4000
		nCust   = 200
		nItems  = 10
		parts   = 4
	)

	// ---- Phase 1: build and persist the database. ---------------------
	func() {
		reg := device.NewRegistry()
		id := reg.NextID()
		d, err := device.NewDisk(id, path, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		reg.Mount(d)
		defer reg.CloseAll()
		pool := buffer.NewPool(reg, 2048, buffer.TwoLevel)
		vol, err := file.Format(pool, id)
		if err != nil {
			t.Fatal(err)
		}
		// Orders, also partitioned for pscan.
		orders, err := vol.Create("orders", ordersSchema)
		if err != nil {
			t.Fatal(err)
		}
		pfiles := make([]*file.File, parts)
		for p := range pfiles {
			pf, err := vol.Create(fmt.Sprintf("orders.%d", p), ordersSchema)
			if err != nil {
				t.Fatal(err)
			}
			pfiles[p] = pf
		}
		idx, err := btree.Create(pool, id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nOrders; i++ {
			data := ordersSchema.MustEncode(
				record.Int(int64(i)),
				record.Int(int64(i*13%nCust)),
				record.Int(int64(i%nItems)),
				record.Int(int64(1+i%5)),
			)
			rid, err := orders.Insert(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Insert(btree.EncodeKey(record.Int(int64(i))), rid); err != nil {
				t.Fatal(err)
			}
			if _, err := pfiles[i%parts].Insert(data); err != nil {
				t.Fatal(err)
			}
		}
		cust, err := vol.Create("customers", custSchema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nCust; i++ {
			cust.Insert(custSchema.MustEncode(record.Int(int64(i)), record.Int(int64(i%7))))
		}
		vol.SaveIndex("orders_oid", idx)
		if err := vol.Save(); err != nil {
			t.Fatal(err)
		}
	}()

	// ---- Phase 2: cold remount, query through the plan language. ------
	reg := device.NewRegistry()
	id := reg.NextID()
	d, err := device.OpenDisk(id, path)
	if err != nil {
		t.Fatal(err)
	}
	reg.Mount(d)
	tempID := reg.NextID()
	reg.Mount(device.NewMem(tempID))
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, 2048, buffer.TwoLevel)
	vol, err := file.OpenVolume(pool, id)
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))
	cat := VolumeCatalog{vol}

	run := func(script string) [][]record.Value {
		t.Helper()
		n, err := Parse(script)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, script)
		}
		it, an, err := BuildAnalyzed(env, cat, n)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		rows, err := core.Collect(it)
		if err != nil {
			t.Fatalf("run: %v\n%s", err, an.String())
		}
		if got := pool.Stats().CurrentlyFixedHint; got != 0 {
			t.Fatalf("pin leak (%d) after:\n%s", got, script)
		}
		return rows
	}

	// Q1: parallel scan + exchange + join + aggregation.
	q1 := run(`
with cust = scan customers
pscan orders 4
| exchange producers=4 flow=on slack=3
| join hash cust on cust = cid
| agg group region compute count, sum(qty)
| sort region
`)
	if len(q1) != 7 {
		t.Fatalf("q1 groups = %d, want 7", len(q1))
	}
	totalQ1 := int64(0)
	for _, r := range q1 {
		totalQ1 += r[1].I
	}
	if totalQ1 != nOrders {
		t.Fatalf("q1 counts sum to %d, want %d", totalQ1, nOrders)
	}

	// Q2: index range scan on the persisted index.
	q2 := run("iscan orders orders_oid 100 199 | agg group item compute count | sort item")
	if len(q2) != nItems {
		t.Fatalf("q2 groups = %d, want %d", len(q2), nItems)
	}
	totalQ2 := int64(0)
	for _, r := range q2 {
		totalQ2 += r[1].I
	}
	if totalQ2 != 100 {
		t.Fatalf("q2 counts sum to %d, want 100", totalQ2)
	}

	// Q3: division — customers who ordered EVERY item. Customer c gets
	// orders i with i ≡ c·13⁻¹ (mod 200)... simpler: just cross-check the
	// division result against an aggregate-based computation.
	q3 := run(`
with items = scan orders | project item | distinct hash
scan orders | divide hash items quot cust div item on item | sort cust
`)
	q3check := run(`
scan orders
| project cust, item
| distinct hash
| agg group cust compute count
| filter count = 10
| sort cust
`)
	if len(q3) != len(q3check) {
		t.Fatalf("division found %d customers, aggregate check %d", len(q3), len(q3check))
	}
	for i := range q3 {
		if q3[i][0].I != q3check[i][0].I {
			t.Fatalf("division row %d: %v vs %v", i, q3[i][0], q3check[i][0])
		}
	}

	// Q4: merge network over sorted partitions.
	q4 := run("pscan orders 4 | sort oid | exchange producers=4 merge=oid | project oid")
	if len(q4) != nOrders {
		t.Fatalf("q4 rows = %d", len(q4))
	}
	for i, r := range q4 {
		if r[0].I != int64(i) {
			t.Fatalf("q4 order broken at %d", i)
		}
	}
}
