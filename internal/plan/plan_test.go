package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

type testDB struct {
	env *core.Env
	cat MapCatalog
	vol *file.Volume
}

func newTestDB(t testing.TB) *testDB {
	t.Helper()
	reg := device.NewRegistry()
	baseID := reg.NextID()
	reg.Mount(device.NewMem(baseID))
	tempID := reg.NextID()
	reg.Mount(device.NewMem(tempID))
	t.Cleanup(func() { reg.CloseAll() })
	pool := buffer.NewPool(reg, 1024, buffer.TwoLevel)
	vol := file.NewVolume(pool, baseID)
	return &testDB{
		env: core.NewEnv(pool, file.NewVolume(pool, tempID)),
		cat: MapCatalog{},
		vol: vol,
	}
}

var empSchema = record.MustSchema(
	record.Field{Name: "id", Type: record.TInt},
	record.Field{Name: "dept", Type: record.TInt},
	record.Field{Name: "salary", Type: record.TFloat},
	record.Field{Name: "name", Type: record.TString},
)

var deptSchema = record.MustSchema(
	record.Field{Name: "dno", Type: record.TInt},
	record.Field{Name: "dname", Type: record.TString},
)

func (db *testDB) loadEmp(t testing.TB, n, ndept int) {
	t.Helper()
	f, err := db.vol.Create("emp", empSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.Insert(empSchema.MustEncode(
			record.Int(int64(i)), record.Int(int64(i%ndept)),
			record.Float(1000+float64(i)), record.Str(fmt.Sprintf("emp-%d", i)),
		))
	}
	db.cat["emp"] = f
	d, err := db.vol.Create("dept", deptSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ndept; i++ {
		d.Insert(deptSchema.MustEncode(record.Int(int64(i)), record.Str(fmt.Sprintf("dept-%d", i))))
	}
	db.cat["dept"] = d
}

// loadPartitioned creates files name.0..name.k-1 of one int column.
func (db *testDB) loadPartitioned(t testing.TB, name string, n, k int) {
	t.Helper()
	s := record.MustSchema(record.Field{Name: "v", Type: record.TInt})
	files := make([]*file.File, k)
	for p := range files {
		f, err := db.vol.Create(fmt.Sprintf("%s.%d", name, p), s)
		if err != nil {
			t.Fatal(err)
		}
		files[p] = f
		db.cat[fmt.Sprintf("%s.%d", name, p)] = f
	}
	for i := 0; i < n; i++ {
		files[i%k].Insert(s.MustEncode(record.Int(int64(i))))
	}
}

func (db *testDB) run(t *testing.T, script string) [][]record.Value {
	t.Helper()
	n, err := Parse(script)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rows, err := Run(db.env, db.cat, n)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rows
}

func TestPlanScanFilterProjectSort(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 100, 4)
	rows := db.run(t, `
# a comment
scan emp
| filter dept = 1 AND salary < 1050.0
| project id, salary * 2 as double
| sort double desc
`)
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1].F > rows[i-1][1].F {
			t.Fatal("sort broken")
		}
	}
}

func TestPlanJoinVariants(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 50, 5)
	for _, algo := range []string{"hash", "merge"} {
		rows := db.run(t, fmt.Sprintf(`
with depts = scan dept | filter dno < 3
scan emp | join %s depts on dept = dno | filter dept <> dno + 1
`, algo))
		// 50 emps over 5 depts => 10 per dept; depts 0,1,2 qualify = 30.
		if len(rows) != 30 {
			t.Fatalf("%s join rows = %d, want 30", algo, len(rows))
		}
	}
	// Nested loops join via generic predicate.
	rows := db.run(t, `
with depts = scan dept
scan emp | join loops depts on dept = dno AND id < 10
`)
	if len(rows) != 10 {
		t.Fatalf("loops join rows = %d, want 10", len(rows))
	}
}

func TestPlanSemiAntiOuter(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 20, 4)
	semi := db.run(t, `
with some = scan dept | filter dno = 2
scan emp | semijoin some on dept = dno
`)
	if len(semi) != 5 {
		t.Fatalf("semi rows = %d", len(semi))
	}
	anti := db.run(t, `
with some = scan dept | filter dno = 2
scan emp | antijoin some on dept = dno
`)
	if len(anti) != 15 {
		t.Fatalf("anti rows = %d", len(anti))
	}
	outer := db.run(t, `
with some = scan dept | filter dno = 2
scan emp | leftouter some on dept = dno
`)
	if len(outer) != 20 {
		t.Fatalf("leftouter rows = %d", len(outer))
	}
}

func TestPlanSetOps(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 10, 2)
	rows := db.run(t, `
with evens = scan emp | filter id % 2 = 0 | project id
with lows = scan emp | filter id < 4 | project id
scan emp | project id | filter id < 0 | union evens | union lows
`)
	// evens: 0,2,4,6,8; lows: 0,1,2,3 → union = {0,1,2,3,4,6,8} = 7.
	if len(rows) != 7 {
		t.Fatalf("union rows = %d, want 7", len(rows))
	}
	inter := db.run(t, `
with lows = scan emp | filter id < 4 | project id
scan emp | filter id % 2 = 0 | project id | intersect lows
`)
	if len(inter) != 2 { // 0, 2
		t.Fatalf("intersect rows = %d, want 2", len(inter))
	}
	diff := db.run(t, `
with lows = scan emp | filter id < 4 | project id
scan emp | filter id % 2 = 0 | project id | difference lows
`)
	if len(diff) != 3 { // 4, 6, 8
		t.Fatalf("difference rows = %d, want 3", len(diff))
	}
	anti := db.run(t, `
with lows = scan emp | filter id < 4 | project id
scan emp | filter id % 2 = 0 | project id | antidifference lows
`)
	if len(anti) != 2 { // 1, 3
		t.Fatalf("antidifference rows = %d, want 2", len(anti))
	}
}

func TestPlanAggregate(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 100, 4)
	for _, algo := range []string{"hash", "sort"} {
		rows := db.run(t, fmt.Sprintf(
			"scan emp | agg %s group dept compute count, sum(salary), max(id) | sort dept", algo))
		if len(rows) != 4 {
			t.Fatalf("%s agg groups = %d", algo, len(rows))
		}
		if rows[0][1].I != 25 {
			t.Fatalf("%s count = %v", algo, rows[0][1])
		}
	}
}

func TestPlanDistinct(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 40, 4)
	rows := db.run(t, "scan emp | project dept | distinct sort | sort dept")
	if len(rows) != 4 {
		t.Fatalf("distinct rows = %d", len(rows))
	}
}

func TestPlanDivision(t *testing.T) {
	db := newTestDB(t)
	// enrolled(student, course), required(course)
	s := record.MustSchema(
		record.Field{Name: "student", Type: record.TInt},
		record.Field{Name: "course", Type: record.TInt},
	)
	f, _ := db.vol.Create("enrolled", s)
	for _, p := range [][2]int64{{1, 1}, {1, 2}, {2, 1}, {3, 1}, {3, 2}} {
		f.Insert(s.MustEncode(record.Int(p[0]), record.Int(p[1])))
	}
	db.cat["enrolled"] = f
	r := record.MustSchema(record.Field{Name: "course", Type: record.TInt})
	g, _ := db.vol.Create("required", r)
	g.Insert(r.MustEncode(record.Int(1)))
	g.Insert(r.MustEncode(record.Int(2)))
	db.cat["required"] = g

	for _, algo := range []string{"hash", "sort"} {
		rows := db.run(t, fmt.Sprintf(
			"with req = scan required\nscan enrolled | divide %s req quot student div course on course | sort student", algo))
		if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 3 {
			t.Fatalf("%s division = %v", algo, rows)
		}
	}
}

func TestPlanExchange(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 1000, 4)
	rows := db.run(t, `
pscan nums 4
| exchange producers=4 packet=16 flow=on slack=3
| sort v
`)
	if len(rows) != 1000 {
		t.Fatalf("exchange rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestPlanExchangeMergeNetwork(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 900, 3)
	rows := db.run(t, `
pscan nums 3
| sort v
| exchange producers=3 merge=v packet=5
`)
	if len(rows) != 900 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("merge network order broken at %d: %v", i, r)
		}
	}
}

func TestPlanExchangeInline(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 300, 1)
	rows := db.run(t, `
pscan nums 1
| exchange producers=1 inline
| sort v
`)
	if len(rows) != 300 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPlanExplain(t *testing.T) {
	n, err := Parse(`
with d = scan dept
pscan nums 3
| exchange producers=3 partition=hash(v) flow=on slack=2
| join hash d on v = dno
| sort v desc
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(n)
	for _, want := range []string{"sort", "join", "exchange", "pscan nums [3 partitions]", "scan dept", "flow=on slack=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestPlanParseErrors(t *testing.T) {
	bad := []string{
		"",
		"filter x = 1",                           // no input
		"scan",                                   // missing table
		"scan emp | scan emp",                    // scan mid-pipeline
		"pscan emp",                              // missing partition count
		"scan emp | bogus",                       // unknown stage
		"scan emp | join hash nosuch on a = b",   // unknown subplan
		"scan emp | join hash d on a",            // bad condition (and unknown subplan)
		"with x scan emp",                        // missing =
		"scan emp | agg group compute",           // malformed agg
		"scan emp | agg group a compute blah(x)", // unknown aggregate
		"scan emp | exchange bogus=1",            // unknown exchange option
		"scan emp | exchange producers=x",        // bad int
		"scan emp | sort id sideways",            // bad direction
		"scan emp | divide x quot a div b",       // malformed divide
		"scan a\nscan b",                         // two main pipelines
		"with a = scan t",                        // no main pipeline
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestPlanUnknownTable(t *testing.T) {
	db := newTestDB(t)
	n, err := Parse("scan nosuch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db.env, db.cat, n); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestPlanUnknownFieldResolution(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 5, 1)
	n, err := Parse("scan emp | sort nosuchfield")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db.env, db.cat, n); err == nil {
		t.Fatal("unknown sort field accepted")
	}
}

func TestVolumeCatalog(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 3, 1)
	cat := VolumeCatalog{db.vol}
	if _, err := cat.Lookup("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Lookup("nosuch"); err == nil {
		t.Fatal("unknown table accepted")
	}
	n, _ := Parse("scan emp")
	rows, err := Run(db.env, cat, n)
	if err != nil || len(rows) != 3 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
}

func TestPlanSupportFunctionModes(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 50, 5)
	for _, mode := range []string{"", "interpreted ", "compiled "} {
		rows := db.run(t, "scan emp | filter "+mode+"dept = 2 | project "+mode+"id * 2 as d")
		if len(rows) != 10 {
			t.Fatalf("mode %q: rows = %d", mode, len(rows))
		}
	}
	// Inline exchange with >1 producers is API-only.
	if _, err := Parse("pscan t 3 | exchange producers=3 inline"); err == nil {
		t.Fatal("multi-member inline exchange accepted in plan language")
	}
}
