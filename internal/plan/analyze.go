package plan

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage/buffer"
	"repro/internal/trace"
)

// Analysis is the EXPLAIN ANALYZE collector: runtime statistics per plan
// node (rows out, Next calls, open/next/close wall time via core.OpStats),
// exchange port counters (packets, records, flow-control stall and
// consumer wait) per exchange node, and the buffer pool's activity over
// the run. Parallel instances of the same node — the per-producer subtrees
// an exchange instantiates — aggregate into one entry.
type Analysis struct {
	root  *Node
	stats map[*Node]*core.OpStats
	// hists holds one Next-latency histogram per node, shared by the
	// node's parallel instances like its OpStats. When the build was
	// given a metrics registry these are the registry's children
	// (volcano_op_next_seconds), so a live scraper and the analyze
	// report read the same distributions.
	hists map[*Node]*metrics.Histogram

	pool *buffer.Pool
	base buffer.Stats // pool counters at build time; String() shows the delta

	// queryID is the serving-layer identity of the run ("" outside the
	// query service); String() prints it and live snapshots join on it.
	queryID string

	// meter is the query's resource meter (BuildOptions.Meter, nil when
	// the build carried none). String() appends a resources footer and
	// Resources() derives CPU time into it.
	meter *core.ResourceMeter

	// hubs collects the exchange hubs instantiated for each exchange node.
	// Guarded by mu: exchange nodes nested under another exchange are built
	// from producer goroutines at run time.
	mu   sync.Mutex
	hubs map[*Node][]*core.Exchange

	// fragments are live readers of remote-fragment state, registered by
	// the distributed layer when a build binds exchange cuts to workers.
	// Each closure snapshots one fragment's current counters, so String()
	// renders a consistent mid-flight view like every other number here.
	fragments []func() FragmentStat

	// est holds the cost pass's per-node cardinality estimates
	// (BuildOptions.Estimates); nil when the plan was not costed. The
	// report prints est= next to observed rows so mis-estimates are
	// visible at a glance.
	est map[*Node]int64

	// choices records which alternative each choose-plan node picked at
	// Open (guarded by mu: a choose-plan inside a producer subtree
	// decides on a producer goroutine).
	choices map[*Node]int
}

// FragmentStat is one remote fragment's contribution to EXPLAIN
// ANALYZE: which producer of which cut ran where, how much crossed the
// wire, and how many dispatch attempts it took.
type FragmentStat struct {
	Path      string `json:"path"`     // exchange cut (see NodeAtPath)
	Producer  int    `json:"producer"` // producer index within the cut
	Worker    string `json:"worker"`   // worker address the fragment ran on
	Attempts  int    `json:"attempts"` // dispatch attempts (1 = no retry)
	Records   int64  `json:"records"`
	WireBytes int64  `json:"wire_bytes"`
	State     string `json:"state"` // running | done | failed
}

// NodeStats are one node's counters; an alias for the shared core type so
// callers can use either name.
type NodeStats = core.OpStats

// BuildAnalyzed is Build with instrumentation: every operator is wrapped
// in a core.Instrumented adapter and every exchange hub is registered.
// Inspect the returned Analysis after execution.
func BuildAnalyzed(env *core.Env, cat Catalog, n *Node) (core.Iterator, *Analysis, error) {
	return buildAnalyzed(env, cat, n, nil)
}

func buildAnalyzed(env *core.Env, cat Catalog, n *Node, tr *trace.Tracer) (core.Iterator, *Analysis, error) {
	return buildObserved(env, cat, n, 0, BuildOptions{Analyze: true, Tracer: tr})
}

// buildObserved performs the instrumented build. The env is expected to
// already carry the meter when o.Meter is set (BuildWith derives it).
// partition pins the producer index for fragment builds (see
// BuildFragmentProducer); whole-plan builds pass 0.
func buildObserved(env *core.Env, cat Catalog, n *Node, partition int, o BuildOptions) (core.Iterator, *Analysis, error) {
	tr, mr := o.Tracer, o.Metrics
	an := &Analysis{
		root:    n,
		stats:   map[*Node]*core.OpStats{},
		hists:   map[*Node]*metrics.Histogram{},
		hubs:    map[*Node][]*core.Exchange{},
		pool:    env.Pool,
		queryID: o.QueryID,
		meter:   env.Meter(),
		est:     o.Estimates,
	}
	if an.pool != nil {
		an.base = an.pool.Stats()
	}
	idx := 0
	var walk func(*Node)
	walk = func(nd *Node) {
		an.stats[nd] = &core.OpStats{}
		if mr.Enabled() {
			// Registry child: visible to live scrapers, labelled by the
			// operator kind and the node's pre-order position so two sorts
			// in one plan stay distinct time series.
			an.hists[nd] = mr.Histogram("volcano_op_next_seconds",
				"Operator Next call latency.", nil,
				metrics.Label{Key: "op", Value: nd.Kind.String()},
				metrics.Label{Key: "node", Value: strconv.Itoa(idx)})
		} else {
			// Standalone: quantiles for the analyze report only.
			an.hists[nd] = metrics.NewHistogram(nil)
		}
		idx++
		for _, in := range nd.Inputs {
			walk(in)
		}
	}
	walk(n)
	it, err := build(&buildCtx{env: env, cat: cat, partition: partition, analysis: an, tracer: tr, done: o.Done, batch: o.BatchSize, queryID: o.QueryID, remote: o.Remote}, n)
	if err != nil {
		return nil, nil, err
	}
	return it, an, nil
}

// Stats returns the counters recorded for a node.
func (a *Analysis) Stats(n *Node) *core.OpStats { return a.stats[n] }

// Latency returns a snapshot of the node's Next-latency histogram.
func (a *Analysis) Latency(n *Node) metrics.HistogramSnapshot {
	return a.hists[n].Snapshot()
}

// setChoice records a choose-plan decision for EXPLAIN ANALYZE.
func (a *Analysis) setChoice(n *Node, i int) {
	a.mu.Lock()
	if a.choices == nil {
		a.choices = map[*Node]int{}
	}
	a.choices[n] = i
	a.mu.Unlock()
}

// Choice reports which alternative the choose-plan node picked at Open
// (-1 until it decides).
func (a *Analysis) Choice(n *Node) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i, ok := a.choices[n]; ok {
		return i
	}
	return -1
}

// chosenLabel names a choose-plan decision for human-facing output:
// the alternative's label when the spec has one, its index otherwise,
// "undecided" before Open.
func chosenLabel(n *Node, i int) string {
	if i < 0 {
		return "undecided"
	}
	if n.Choose != nil && i < len(n.Choose.Labels) {
		return n.Choose.Labels[i]
	}
	return fmt.Sprintf("%d", i)
}

// Estimate reports the cost pass's cardinality estimate for a node; ok
// is false when the plan was not costed.
func (a *Analysis) Estimate(n *Node) (int64, bool) {
	e, ok := a.est[n]
	return e, ok
}

// addExchange registers a hub instantiated for an exchange node.
func (a *Analysis) addExchange(n *Node, x *core.Exchange) {
	a.mu.Lock()
	a.hubs[n] = append(a.hubs[n], x)
	a.mu.Unlock()
}

// AddFragment registers a live reader for one remote fragment's state.
// The distributed layer calls this once per dispatched producer
// fragment; safe concurrently with rendering.
func (a *Analysis) AddFragment(fn func() FragmentStat) {
	a.mu.Lock()
	a.fragments = append(a.fragments, fn)
	a.mu.Unlock()
}

// Fragments snapshots every registered remote fragment.
func (a *Analysis) Fragments() []FragmentStat {
	a.mu.Lock()
	fns := append([]func() FragmentStat(nil), a.fragments...)
	a.mu.Unlock()
	out := make([]FragmentStat, len(fns))
	for i, fn := range fns {
		out[i] = fn()
	}
	return out
}

// ExchangeStats sums the port counters of every hub instantiated for the
// given exchange node (normally one; zero if the node never ran).
func (a *Analysis) ExchangeStats(n *Node) core.ExchangeStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var sum core.ExchangeStats
	for _, x := range a.hubs[n] {
		st := x.Stats()
		sum.Packets += st.Packets
		sum.Records += st.Records
		sum.Forks += st.Forks
		sum.PoolHits += st.PoolHits
		sum.PoolMisses += st.PoolMisses
		sum.PoolDiscards += st.PoolDiscards
		sum.SpawnTime += st.SpawnTime
		sum.ProducerStall += st.ProducerStall
		sum.ConsumerWait += st.ConsumerWait
	}
	return sum
}

// PoolStats returns the buffer pool's activity since BuildAnalyzed:
// hits/misses, device I/O, and the pin balance (outstanding pins are a
// leak once the query has closed).
func (a *Analysis) PoolStats() buffer.Stats {
	if a.pool == nil {
		return buffer.Stats{}
	}
	return a.pool.Stats().Sub(a.base)
}

// QueryID returns the serving-layer query identity stamped at build time
// (BuildOptions.QueryID), or "" when the run had none.
func (a *Analysis) QueryID() string { return a.queryID }

// CPUNanos derives the query's CPU time from the operator wall-time
// counters: each node contributes its exclusive time — total open+next+
// close minus the totals of its demand-driven children, which are nested
// inside the parent's calls. An exchange node is the boundary where
// demand-driven nesting stops: its producer subtrees run on their own
// goroutines (their totals count independently as producer-side work),
// and its own time minus the consumer-wait counter is what the consumer
// endpoint actually computed. Negative exclusive times (timer skew on
// sub-microsecond operators) clamp to zero. Safe mid-flight; all inputs
// are atomics.
func (a *Analysis) CPUNanos() int64 {
	var total int64
	var walk func(n *Node)
	walk = func(n *Node) {
		if st := a.stats[n]; st != nil {
			own := st.OpenNanos.Load() + st.NextNanos.Load() + st.CloseNanos.Load()
			if n.Kind == KindExchange {
				own -= int64(a.ExchangeStats(n).ConsumerWait)
			} else {
				for _, in := range n.Inputs {
					if cst := a.stats[in]; cst != nil {
						own -= cst.OpenNanos.Load() + cst.NextNanos.Load() + cst.CloseNanos.Load()
					}
				}
			}
			if own > 0 {
				total += own
			}
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(a.root)
	return total
}

// Resources publishes the derived CPU time into the query's meter and
// returns its snapshot — the one consistent view the trailer, the live
// registry, the slow-query log and the metric families all read. A build
// without a meter returns the zero snapshot.
func (a *Analysis) Resources() core.ResourceSnapshot {
	if a.meter == nil {
		return core.ResourceSnapshot{}
	}
	a.meter.SetCPUNanos(a.CPUNanos())
	return a.meter.Snapshot()
}

// Meter returns the resource meter the build attributed to (nil when the
// build carried none).
func (a *Analysis) Meter() *core.ResourceMeter { return a.meter }

// String renders the annotated plan tree: per-operator rows, Next calls
// and open/next/close wall time; packet, stall and wait counters under
// each exchange; and the buffer pool's totals as a footer. All counters
// are atomic, so rendering a still-running query yields a consistent
// mid-flight view.
func (a *Analysis) String() string {
	var sb strings.Builder
	if a.queryID != "" {
		fmt.Fprintf(&sb, "query %s\n", a.queryID)
	}
	a.render(&sb, a.root, 0)
	for _, f := range a.Fragments() {
		fmt.Fprintf(&sb, "fragment path=%q producer=%d worker=%s attempts=%d records=%d wire=%dB state=%s\n",
			f.Path, f.Producer, f.Worker, f.Attempts, f.Records, f.WireBytes, f.State)
	}
	if a.pool != nil {
		st := a.PoolStats()
		balance := "pins balanced"
		if st.CurrentlyFixedHint != 0 {
			balance = fmt.Sprintf("PIN LEAK: %d outstanding", st.CurrentlyFixedHint)
		}
		fmt.Fprintf(&sb, "buffer: fixes=%d hits=%d misses=%d reads=%d writes=%d extra-pins=%d (%s)\n",
			st.Fixes, st.Hits, st.Misses, st.Reads, st.Writes, st.ExtraPins, balance)
	}
	if a.meter != nil {
		// The attributed footer: unlike the pool delta above (process-wide,
		// polluted by concurrent queries), these numbers are this query's
		// own.
		r := a.Resources()
		fmt.Fprintf(&sb, "resources: cpu=%v buf-fixes=%d (%dh/%dm) io=%dB (r%d/w%d) x-packets=%d x-records=%d wire=%dB batch-hw=%dB\n",
			time.Duration(r.CPUSeconds*1e9).Round(time.Microsecond),
			r.BufferFixes, r.BufferHits, r.BufferMisses,
			r.IOBytes(), r.DeviceReads, r.DeviceWrites,
			r.ExchangePackets, r.ExchangeRecords, r.WireBytes, r.BatchHighWater)
	}
	return sb.String()
}

func (a *Analysis) render(sb *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	sb.WriteString(indent)
	sb.WriteString(describe(n))
	if st := a.stats[n]; st != nil {
		fmt.Fprintf(sb, "  [%s", st.Snapshot())
		if e, ok := a.est[n]; ok {
			fmt.Fprintf(sb, " est=%d", e)
		}
		// Latency quantiles once there is a distribution worth reading:
		// a single Next call's p50=p95=p99 adds nothing over next=.
		if s := a.hists[n].Snapshot(); s.Count() > 1 {
			fmt.Fprintf(sb, " p50=%v p95=%v p99=%v",
				s.Quantile(0.50).Round(time.Microsecond),
				s.Quantile(0.95).Round(time.Microsecond),
				s.Quantile(0.99).Round(time.Microsecond))
		}
		sb.WriteString("]")
	}
	sb.WriteByte('\n')
	if n.Kind == KindChoosePlan && n.Choose != nil {
		fmt.Fprintf(sb, "%s  {chosen=%s table=%s threshold=%d}\n",
			indent, chosenLabel(n, a.Choice(n)), n.Choose.Table, n.Choose.Threshold)
	}
	if n.Kind == KindExchange {
		x := a.ExchangeStats(n)
		fmt.Fprintf(sb, "%s  {packets=%d records=%d forks=%d pool=%dh/%dm/%dd stall=%v wait=%v}\n",
			indent, x.Packets, x.Records, x.Forks,
			x.PoolHits, x.PoolMisses, x.PoolDiscards,
			x.ProducerStall.Round(time.Microsecond), x.ConsumerWait.Round(time.Microsecond))
	}
	for _, in := range n.Inputs {
		a.render(sb, in, depth+1)
	}
}
