package plan

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/record"
)

// Analysis collects runtime statistics per plan node: how many records
// each operator produced and how much (inclusive) wall time its Next
// calls took. Parallel instances of the same node — the per-producer
// subtrees an exchange instantiates — aggregate into one entry.
type Analysis struct {
	root  *Node
	stats map[*Node]*NodeStats
}

// NodeStats are one node's counters. All fields are safe for concurrent
// update from parallel plan instances.
type NodeStats struct {
	Records   atomic.Int64
	NextCalls atomic.Int64
	NextNanos atomic.Int64
	Opens     atomic.Int64
}

// BuildAnalyzed is Build with instrumentation: every operator is wrapped
// in a counting adapter. Inspect the returned Analysis after execution.
func BuildAnalyzed(env *core.Env, cat Catalog, n *Node) (core.Iterator, *Analysis, error) {
	an := &Analysis{root: n, stats: map[*Node]*NodeStats{}}
	var walk func(*Node)
	walk = func(nd *Node) {
		an.stats[nd] = &NodeStats{}
		for _, in := range nd.Inputs {
			walk(in)
		}
	}
	walk(n)
	it, err := build(&buildCtx{env: env, cat: cat, analysis: an}, n)
	if err != nil {
		return nil, nil, err
	}
	return it, an, nil
}

// Stats returns the counters recorded for a node.
func (a *Analysis) Stats(n *Node) *NodeStats { return a.stats[n] }

// String renders the plan with per-node record counts and time.
func (a *Analysis) String() string {
	var sb strings.Builder
	a.render(&sb, a.root, 0)
	return sb.String()
}

func (a *Analysis) render(sb *strings.Builder, n *Node, depth int) {
	st := a.stats[n]
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(describe(n))
	if st != nil {
		d := time.Duration(st.NextNanos.Load())
		fmt.Fprintf(sb, "  [rows=%d, opens=%d, next=%v]",
			st.Records.Load(), st.Opens.Load(), d.Round(time.Microsecond))
	}
	sb.WriteByte('\n')
	for _, in := range n.Inputs {
		a.render(sb, in, depth+1)
	}
}

// counted is the instrumentation adapter. It is itself a plain iterator,
// so instrumentation composes with everything else.
type counted struct {
	inner core.Iterator
	st    *NodeStats
}

// Schema implements core.Iterator.
func (c *counted) Schema() *record.Schema { return c.inner.Schema() }

// Open implements core.Iterator.
func (c *counted) Open() error {
	c.st.Opens.Add(1)
	return c.inner.Open()
}

// Next implements core.Iterator.
func (c *counted) Next() (core.Rec, bool, error) {
	start := time.Now()
	r, ok, err := c.inner.Next()
	c.st.NextNanos.Add(int64(time.Since(start)))
	c.st.NextCalls.Add(1)
	if ok {
		c.st.Records.Add(1)
	}
	return r, ok, err
}

// Close implements core.Iterator.
func (c *counted) Close() error { return c.inner.Close() }
