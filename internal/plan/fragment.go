package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/record"
)

// Fragment decomposition: the coordinator pass that splits a compiled
// plan at exchange boundaries into shippable fragments.
//
// The exchange operator is the only place a Volcano plan crosses a
// process boundary, so it is the only place a plan can be cut: the
// producer subtree below a distributable exchange becomes a fragment a
// remote worker can execute, and the exchange node itself becomes the
// receiving end of a real wire on the coordinator. Because a Template is
// immutable and a fragment is identified purely by position, a fragment
// ships as (plan source, node path, producer index): the worker
// recompiles the same source — compilation is deterministic — navigates
// to the cut, and builds just the producer subtree with the producer
// index in scope, exactly as the local exchange's NewProducer closure
// would have.

// FragmentCut describes one distributable exchange boundary of a plan.
type FragmentCut struct {
	// Path locates the exchange node from the root by child indexes,
	// dotted ("" is the root itself, "0.1" is root.Inputs[0].Inputs[1]).
	Path string
	// Node is the exchange node at Path (within the tree Cuts walked).
	Node *Node
	// Producers is the number of producer fragments the cut forks — one
	// shippable fragment per producer index.
	Producers int
}

// Distributable reports whether an exchange node is a boundary a
// coordinator may cut: a plain fan-in — non-inline (it really forks
// producers), not stream-preserving (a merge exchange's streams must
// share the consumer's address space), and at most one consumer (the
// coordinator is the only receiving site).
func Distributable(n *Node) bool {
	if n == nil || n.Kind != KindExchange || n.X == nil {
		return false
	}
	o := n.X
	return !o.Inline && !o.KeepStreams && o.Consumers <= 1
}

// Cuts walks the plan from the root and returns every distributable
// exchange boundary, pre-order. The walk never descends below an
// exchange node of any kind: such a subtree is instantiated once per
// producer at run time, so a cut inside it would not denote one fragment
// — nested exchanges execute wherever their enclosing fragment runs.
func Cuts(root *Node) []FragmentCut {
	var cuts []FragmentCut
	var walk func(n *Node, path string)
	walk = func(n *Node, path string) {
		if n == nil {
			return
		}
		if n.Kind == KindExchange {
			if Distributable(n) {
				p := n.X.Producers
				if p < 1 {
					p = 1
				}
				cuts = append(cuts, FragmentCut{Path: path, Node: n, Producers: p})
			}
			return
		}
		if n.Kind == KindChoosePlan {
			// A choose-plan's alternatives are picked at Open; an exchange
			// inside an alternative that never runs must not be dispatched,
			// so choose-plan subtrees always execute locally.
			return
		}
		for i, in := range n.Inputs {
			walk(in, childPath(path, i))
		}
	}
	walk(root, "")
	return cuts
}

func childPath(path string, i int) string {
	if path == "" {
		return strconv.Itoa(i)
	}
	return path + "." + strconv.Itoa(i)
}

// NodeAtPath navigates a dotted child-index path from the root.
func NodeAtPath(root *Node, path string) (*Node, error) {
	n := root
	if path == "" {
		return n, nil
	}
	for _, part := range strings.Split(path, ".") {
		i, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("plan: bad node path %q", path)
		}
		if n == nil || i < 0 || i >= len(n.Inputs) {
			return nil, fmt.Errorf("plan: node path %q leaves the tree", path)
		}
		n = n.Inputs[i]
	}
	if n == nil {
		return nil, fmt.Errorf("plan: node path %q leaves the tree", path)
	}
	return n, nil
}

// Deterministic reports whether a fragment's output order is a pure
// function of (plan, producer index) — the property the coordinator's
// skip-replay retry depends on: a retried fragment must reproduce the
// records it already delivered, in the same order, for the skip count to
// resume the stream exactly. A subtree that contains a non-inline
// exchange interleaves its own producers' packets nondeterministically,
// so only fragments free of such exchanges may be resumed mid-stream.
func Deterministic(n *Node) bool {
	if n == nil {
		return true
	}
	if n.Kind == KindExchange && n.X != nil && !n.X.Inline {
		return false
	}
	if n.Kind == KindChoosePlan {
		// The decision function consults the catalog's stats at Open: a
		// retry may legitimately pick a different alternative (with a
		// different output order), so mid-stream resume is unsound.
		return false
	}
	for _, in := range n.Inputs {
		if !Deterministic(in) {
			return false
		}
	}
	return true
}

// BuildFragmentProducer instantiates one producer fragment of the cut at
// path: the producer subtree of that exchange, with the producer index
// in scope so partitioned scans resolve to their partition files. This
// is what a volcano-worker executes — the same instantiation the local
// exchange's NewProducer closure performs, minus the exchange itself
// (the wire takes its place).
func BuildFragmentProducer(env *core.Env, cat Catalog, root *Node, path string, producer int, o BuildOptions) (core.Iterator, error) {
	n, err := NodeAtPath(root, path)
	if err != nil {
		return nil, err
	}
	if n.Kind != KindExchange || len(n.Inputs) != 1 {
		return nil, fmt.Errorf("plan: fragment path %q is not an exchange cut", path)
	}
	if env != nil && o.Meter != nil {
		env = env.WithMeter(o.Meter)
	}
	if o.Analyze || o.Metrics.Enabled() {
		// Instrumented fragment: a worker scraping its own registry sees
		// the subtree's volcano_op_next_seconds series like any local
		// query. The Analysis itself stays worker-local.
		it, _, err := buildObserved(env, cat, n.Inputs[0], producer, o)
		return it, err
	}
	return build(&buildCtx{
		env:       env,
		cat:       cat,
		partition: producer,
		tracer:    o.Tracer,
		done:      o.Done,
		batch:     o.BatchSize,
		queryID:   o.QueryID,
	}, n.Inputs[0])
}

// FragmentSchema determines the record schema crossing the cut at path
// by building a probe instance of producer 0's subtree — the same probe
// buildExchange performs locally. The coordinator needs the schema
// before any worker has dialed in.
func FragmentSchema(env *core.Env, cat Catalog, root *Node, path string) (*record.Schema, error) {
	probe, err := BuildFragmentProducer(env, cat, root, path, 0, BuildOptions{})
	if err != nil {
		return nil, err
	}
	return probe.Schema(), nil
}
