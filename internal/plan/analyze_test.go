package plan

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestBuildAnalyzedCounts(t *testing.T) {
	db := newTestDB(t)
	db.loadEmp(t, 100, 4)
	n, err := Parse("scan emp | filter dept = 1 | sort salary desc")
	if err != nil {
		t.Fatal(err)
	}
	it, an, err := BuildAnalyzed(db.env, db.cat, n)
	if err != nil {
		t.Fatal(err)
	}
	count, err := core.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if count != 25 {
		t.Fatalf("rows = %d", count)
	}
	// Root (sort) produced 25, filter produced 25, scan produced 100.
	if got := an.Stats(n).Rows.Load(); got != 25 {
		t.Fatalf("sort rows = %d", got)
	}
	if got := an.Stats(n.Inputs[0]).Rows.Load(); got != 25 {
		t.Fatalf("filter rows = %d", got)
	}
	if got := an.Stats(n.Inputs[0].Inputs[0]).Rows.Load(); got != 100 {
		t.Fatalf("scan rows = %d", got)
	}
	out := an.String()
	if !strings.Contains(out, "rows=100") || !strings.Contains(out, "rows=25") {
		t.Fatalf("analysis output:\n%s", out)
	}
}

func TestBuildAnalyzedParallelAggregatesInstances(t *testing.T) {
	db := newTestDB(t)
	db.loadPartitioned(t, "nums", 600, 3)
	n, err := Parse("pscan nums 3 | exchange producers=3 | agg group v compute count")
	if err != nil {
		t.Fatal(err)
	}
	it, an, err := BuildAnalyzed(db.env, db.cat, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Drain(it); err != nil {
		t.Fatal(err)
	}
	// The pscan node aggregates across all three producer instances.
	scanNode := n.Inputs[0].Inputs[0]
	if got := an.Stats(scanNode).Rows.Load(); got != 600 {
		t.Fatalf("pscan rows = %d, want 600", got)
	}
	if got := an.Stats(scanNode).Opens.Load(); got != 3 {
		t.Fatalf("pscan opens = %d, want 3", got)
	}
	// The exchange node registered its hub: 600 records crossed the port.
	xNode := n.Inputs[0]
	xs := an.ExchangeStats(xNode)
	if xs.Records != 600 {
		t.Fatalf("exchange records = %d, want 600", xs.Records)
	}
	if xs.Packets < 3 {
		t.Fatalf("exchange packets = %d", xs.Packets)
	}
	if xs.Forks != 3 {
		t.Fatalf("exchange forks = %d, want 3", xs.Forks)
	}
	// Every packet pushed was obtained by exactly one pool get, so the
	// aggregated stats must carry the pool counters through intact.
	if xs.PoolHits+xs.PoolMisses != xs.Packets {
		t.Fatalf("pool hits %d + misses %d != packets %d", xs.PoolHits, xs.PoolMisses, xs.Packets)
	}
	out := an.String()
	for _, want := range []string{"packets=", "stall=", "wait=", "buffer: fixes="} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "pins balanced") {
		t.Fatalf("pin leak reported:\n%s", out)
	}
}
