package plan

import (
	"repro/internal/core"
)

// OpSnapshot is a point-in-time, JSON-friendly view of one plan node's
// runtime counters: the operator's description as EXPLAIN ANALYZE prints
// it, its aggregated OpStats, the port counters when the node is an
// exchange, and the inputs recursively. Because every underlying counter
// is atomic, Snapshot is safe to call while the query is still running —
// it is the live drill-down behind the serving layer's /debug/queries,
// not just a post-mortem export.
type OpSnapshot struct {
	Op       string               `json:"op"`
	Stats    core.OpStatsSnapshot `json:"stats"`
	EstRows  int64                `json:"est_rows,omitempty"`
	Chosen   string               `json:"chosen,omitempty"`
	Exchange *ExchangeSnapshot    `json:"exchange,omitempty"`
	Inputs   []OpSnapshot         `json:"inputs,omitempty"`
}

// ExchangeSnapshot is the JSON shape of an exchange node's port counters.
type ExchangeSnapshot struct {
	Packets         int64 `json:"packets"`
	Records         int64 `json:"records"`
	Forks           int64 `json:"forks"`
	ProducerStall   int64 `json:"producer_stall_ns"`
	ConsumerWait    int64 `json:"consumer_wait_ns"`
	PoolHits        int64 `json:"pool_hits"`
	PoolMisses      int64 `json:"pool_misses"`
	BatchPoolHits   int64 `json:"batch_pool_hits,omitempty"`
	BatchPoolMisses int64 `json:"batch_pool_misses,omitempty"`
}

// Snapshot walks the plan tree and snapshots every node's counters. The
// result is self-contained plain data: safe to marshal, store, or diff
// against a later snapshot of the same run (counters only grow).
func (a *Analysis) Snapshot() OpSnapshot {
	return a.snapshotNode(a.root)
}

// RootRows reports the rows the root operator has delivered so far — the
// cheapest live progress signal for a running query.
func (a *Analysis) RootRows() int64 {
	if st := a.stats[a.root]; st != nil {
		return st.Rows.Load()
	}
	return 0
}

func (a *Analysis) snapshotNode(n *Node) OpSnapshot {
	s := OpSnapshot{Op: describe(n)}
	if st := a.stats[n]; st != nil {
		s.Stats = st.Snapshot()
	}
	if e, ok := a.Estimate(n); ok {
		s.EstRows = e
	}
	if n.Kind == KindChoosePlan {
		s.Chosen = chosenLabel(n, a.Choice(n))
	}
	if n.Kind == KindExchange {
		x := a.ExchangeStats(n)
		s.Exchange = &ExchangeSnapshot{
			Packets:         x.Packets,
			Records:         x.Records,
			Forks:           x.Forks,
			ProducerStall:   int64(x.ProducerStall),
			ConsumerWait:    int64(x.ConsumerWait),
			PoolHits:        x.PoolHits,
			PoolMisses:      x.PoolMisses,
			BatchPoolHits:   x.BatchPoolHits,
			BatchPoolMisses: x.BatchPoolMisses,
		}
	}
	if len(n.Inputs) > 0 {
		s.Inputs = make([]OpSnapshot, 0, len(n.Inputs))
		for _, in := range n.Inputs {
			s.Inputs = append(s.Inputs, a.snapshotNode(in))
		}
	}
	return s
}
