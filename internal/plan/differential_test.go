package plan

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// The differential conformance harness: every plan in the corpus runs
// once record-at-a-time and once per batch size under the batch
// protocol, and the sorted, rendered result sets must be byte-identical.
// The corpus spans every operator family the plan language can express —
// scans, filters, projections, all join and match variants, aggregation,
// duplicate elimination, set operations, division, sorting, and single,
// partitioned, merging and nested exchanges — so a batch-protocol bug
// anywhere in an operator's consume or produce path shows up as a
// mode mismatch here rather than as a wrong answer in production.

// diffBatchSizes are the batch sizes every corpus plan is replayed
// under: the degenerate size, a tiny prime that never divides the row
// counts (forcing partial final batches everywhere), and the default.
var diffBatchSizes = []int{1, 7, core.DefaultBatchSize}

// diffDB is the differential fixture: one world holding every table the
// corpus references, with the buffer pool exposed for pin-leak checks.
type diffDB struct {
	env  *core.Env
	cat  MapCatalog
	pool *buffer.Pool
}

func newDiffDB(t testing.TB) *diffDB {
	t.Helper()
	reg := device.NewRegistry()
	baseID := reg.NextID()
	reg.Mount(device.NewMem(baseID))
	tempID := reg.NextID()
	reg.Mount(device.NewMem(tempID))
	t.Cleanup(func() { reg.CloseAll() })
	pool := buffer.NewPool(reg, 1024, buffer.TwoLevel)
	vol := file.NewVolume(pool, baseID)
	db := &diffDB{
		env:  core.NewEnv(pool, file.NewVolume(pool, tempID)),
		cat:  MapCatalog{},
		pool: pool,
	}

	// emp(id, dept, salary, name) and dept(dno, dname), as in plan_test.
	emp, err := vol.Create("emp", empSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		emp.Insert(empSchema.MustEncode(
			record.Int(int64(i)), record.Int(int64(i%4)),
			record.Float(1000+float64(i%13)*10), record.Str(fmt.Sprintf("emp-%d", i)),
		))
	}
	db.cat["emp"] = emp
	dep, err := vol.Create("dept", deptSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		dep.Insert(deptSchema.MustEncode(record.Int(int64(i)), record.Str(fmt.Sprintf("dept-%d", i))))
	}
	db.cat["dept"] = dep

	// nums.0..nums.3: one int column, 500 values dealt round robin.
	numSchema := record.MustSchema(record.Field{Name: "v", Type: record.TInt})
	parts := make([]*file.File, 4)
	for p := range parts {
		f, err := vol.Create(fmt.Sprintf("nums.%d", p), numSchema)
		if err != nil {
			t.Fatal(err)
		}
		parts[p] = f
		db.cat[fmt.Sprintf("nums.%d", p)] = f
	}
	for i := 0; i < 500; i++ {
		parts[i%4].Insert(numSchema.MustEncode(record.Int(int64(i))))
	}

	// enrolled(student, course) ÷ required(course).
	es := record.MustSchema(
		record.Field{Name: "student", Type: record.TInt},
		record.Field{Name: "course", Type: record.TInt},
	)
	enr, err := vol.Create("enrolled", es)
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 20; s++ {
		for c := int64(0); c < 3; c++ {
			if s%2 == 0 || c != 1 { // odd students miss course 1
				enr.Insert(es.MustEncode(record.Int(s), record.Int(c)))
			}
		}
	}
	db.cat["enrolled"] = enr
	rs := record.MustSchema(record.Field{Name: "course", Type: record.TInt})
	req, err := vol.Create("required", rs)
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 3; c++ {
		req.Insert(rs.MustEncode(record.Int(c)))
	}
	db.cat["required"] = req
	return db
}

// renderSorted canonicalises a result set: each row rendered
// field-by-field, rows sorted, so comparison is order-insensitive
// (exchange arrival order is nondeterministic by design).
func renderSorted(rows [][]record.Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out[i] = strings.Join(cells, "\x1f")
	}
	sort.Strings(out)
	return out
}

// diffCorpus is the conformance corpus. Every script must parse and run
// against the diffDB fixture.
var diffCorpus = []struct {
	name   string
	script string
}{
	{"scan", "scan emp"},
	{"filter", "scan emp | filter dept = 2 AND salary < 1100.0"},
	{"project-sort", "scan emp | project id, salary * 2 as double | sort double desc, id"},
	{"expr-modes", "scan emp | filter interpreted dept = 1 | project compiled id + dept as x"},
	{"join-hash", "with d = scan dept\nscan emp | join hash d on dept = dno"},
	{"join-merge", "with d = scan dept\nscan emp | join merge d on dept = dno"},
	{"join-loops", "with d = scan dept\nscan emp | join loops d on dept = dno AND id < 25"},
	{"semijoin", "with d = scan dept | filter dno = 2\nscan emp | semijoin d on dept = dno"},
	{"antijoin", "with d = scan dept | filter dno = 2\nscan emp | antijoin d on dept = dno"},
	{"leftouter", "with d = scan dept | filter dno < 2\nscan emp | leftouter d on dept = dno"},
	{"agg-hash", "scan emp | agg hash group dept compute count, sum(salary), max(id)"},
	{"agg-sort", "scan emp | agg sort group dept compute count, avg(salary), min(id)"},
	{"distinct", "scan emp | project dept | distinct sort"},
	{"union", "with evens = scan emp | filter id % 2 = 0 | project id\nwith lows = scan emp | filter id < 8 | project id\nscan emp | project id | filter id < 0 | union evens | union lows"},
	{"intersect", "with lows = scan emp | filter id < 8 | project id\nscan emp | filter id % 2 = 0 | project id | intersect lows"},
	{"difference", "with lows = scan emp | filter id < 8 | project id\nscan emp | filter id % 2 = 0 | project id | difference lows"},
	{"divide-hash", "with req = scan required\nscan enrolled | divide hash req quot student div course on course"},
	{"divide-sort", "with req = scan required\nscan enrolled | divide sort req quot student div course on course"},
	{"exchange", "pscan nums 4 | exchange producers=4 packet=16 flow=on slack=3"},
	{"exchange-hash-partition", "pscan nums 4 | exchange producers=4 partition=hash(v) packet=7"},
	{"exchange-merge", "pscan nums 4 | sort v | exchange producers=4 merge=v packet=5"},
	{"exchange-nested", "pscan nums 4 | exchange producers=4 packet=16 | exchange producers=1 packet=5"},
	{"exchange-above-join", "with d = scan dept\npscan nums 4 | exchange producers=4 packet=16 | join hash d on v = dno"},
	{"exchange-agg", "pscan nums 4 | exchange producers=4 packet=16 flow=on slack=3 | agg hash group v compute count | filter v < 10"},
}

func TestDifferentialCorpus(t *testing.T) {
	db := newDiffDB(t)
	for _, tc := range diffCorpus {
		t.Run(tc.name, func(t *testing.T) {
			n, err := Parse(tc.script)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			rowRows, err := Run(db.env, db.cat, n)
			if err != nil {
				t.Fatalf("row mode: %v", err)
			}
			if len(rowRows) == 0 && tc.name != "union" {
				// Every corpus plan except the degenerate branch of union
				// produces rows; an empty row-mode result would make the
				// differential comparison vacuous.
				t.Fatalf("row mode produced no rows — corpus case is vacuous")
			}
			want := renderSorted(rowRows)
			for _, size := range diffBatchSizes {
				batchRows, err := RunBatch(db.env, db.cat, n, size)
				if err != nil {
					t.Fatalf("batch size %d: %v", size, err)
				}
				got := renderSorted(batchRows)
				if len(got) != len(want) {
					t.Fatalf("batch size %d: %d rows, row mode gave %d", size, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("batch size %d: row %d differs:\n got %q\nwant %q", size, i, got[i], want[i])
					}
				}
			}
			if pinned := db.pool.PinnedFrames(); pinned != 0 {
				t.Fatalf("%d frames still pinned after both modes", pinned)
			}
		})
	}
}

// TestDifferentialIndexScan replays index-scan plans (which need a
// durable volume with a saved B+-tree) through both modes.
func TestDifferentialIndexScan(t *testing.T) {
	env, cat := durableDB(t)
	for _, script := range []string{
		"iscan t t_id 100 199",
		"iscan t t_id | filter v > 500 | project id, v",
		"iscan t t_id 990 | agg hash group v compute count",
	} {
		n, err := Parse(script)
		if err != nil {
			t.Fatalf("parse %q: %v", script, err)
		}
		rowRows, err := Run(env, cat, n)
		if err != nil {
			t.Fatalf("row mode %q: %v", script, err)
		}
		if len(rowRows) == 0 {
			t.Fatalf("%q: row mode produced no rows", script)
		}
		want := renderSorted(rowRows)
		for _, size := range diffBatchSizes {
			batchRows, err := RunBatch(env, cat, n, size)
			if err != nil {
				t.Fatalf("batch size %d %q: %v", size, script, err)
			}
			got := renderSorted(batchRows)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("batch size %d %q: result sets differ", size, script)
			}
		}
	}
}

// drainRowMode pulls everything through Next until EOS or error,
// unfixing as it goes.
func drainRowMode(it core.Iterator, limit int) (int, error) {
	n := 0
	for n < limit {
		r, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		r.Unfix()
		n++
	}
	return n, nil
}

// drainBatchMode pulls everything through NextBatch until EOS or error,
// releasing each batch.
func drainBatchMode(it core.Iterator, size, limit int) (int, error) {
	src := core.AsBatch(it)
	b := core.NewBatch(size)
	n := 0
	for n < limit {
		if err := src.NextBatch(b); err != nil {
			return n, err
		}
		if b.Len() == 0 {
			return n, nil
		}
		n += b.Len()
		b.Release()
	}
	return n, nil
}

// TestDifferentialCancellationPreClosed builds an exchange plan with an
// already-closed Done channel: in both modes the stream must fail with
// ErrCanceled and leak no pins.
func TestDifferentialCancellationPreClosed(t *testing.T) {
	db := newDiffDB(t)
	n, err := Parse("pscan nums 4 | exchange producers=4 packet=16 flow=on slack=3")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	for _, size := range []int{0, 7} {
		it, _, err := BuildWith(db.env, db.cat, n, BuildOptions{Done: done, BatchSize: size})
		if err != nil {
			t.Fatal(err)
		}
		if err := it.Open(); err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		var drainErr error
		if size > 0 {
			_, drainErr = drainBatchMode(it, size, 1<<20)
		} else {
			_, drainErr = drainRowMode(it, 1<<20)
		}
		if !errors.Is(drainErr, core.ErrCanceled) {
			t.Fatalf("size %d: drain error = %v, want ErrCanceled", size, drainErr)
		}
		if err := it.Close(); err != nil && !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("size %d: close: %v", size, err)
		}
		if pinned := db.pool.PinnedFrames(); pinned != 0 {
			t.Fatalf("size %d: %d frames still pinned", size, pinned)
		}
	}
}

// TestDifferentialCancellationMidStream consumes part of the result,
// closes Done mid-stream, and requires a clean teardown in both modes:
// the remaining drain either finishes or reports ErrCanceled, Close
// succeeds (or reports the cancellation), and no pin leaks.
func TestDifferentialCancellationMidStream(t *testing.T) {
	db := newDiffDB(t)
	n, err := Parse("pscan nums 4 | exchange producers=4 packet=4 flow=on slack=2")
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 7} {
		done := make(chan struct{})
		it, _, err := BuildWith(db.env, db.cat, n, BuildOptions{Done: done, BatchSize: size})
		if err != nil {
			t.Fatal(err)
		}
		if err := it.Open(); err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		// Take a prefix, then cancel while producers are still working
		// (packet=4 with slack 2 keeps most of the 500 rows undelivered).
		var prefixErr error
		if size > 0 {
			_, prefixErr = drainBatchMode(it, size, 20)
		} else {
			_, prefixErr = drainRowMode(it, 20)
		}
		if prefixErr != nil {
			t.Fatalf("size %d: prefix drain: %v", size, prefixErr)
		}
		close(done)
		var restErr error
		if size > 0 {
			_, restErr = drainBatchMode(it, size, 1<<20)
		} else {
			_, restErr = drainRowMode(it, 1<<20)
		}
		if restErr != nil && !errors.Is(restErr, core.ErrCanceled) {
			t.Fatalf("size %d: post-cancel drain error = %v", size, restErr)
		}
		if err := it.Close(); err != nil && !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("size %d: close: %v", size, err)
		}
		if pinned := db.pool.PinnedFrames(); pinned != 0 {
			t.Fatalf("size %d: %d frames still pinned after cancel", size, pinned)
		}
	}
}
