package plan

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// durableDB builds a formatted disk volume with an indexed table.
func durableDB(t *testing.T) (*core.Env, VolumeCatalog) {
	t.Helper()
	reg := device.NewRegistry()
	baseID := reg.NextID()
	d, err := device.NewDisk(baseID, filepath.Join(t.TempDir(), "db"), 8192)
	if err != nil {
		t.Fatal(err)
	}
	reg.Mount(d)
	tempID := reg.NextID()
	reg.Mount(device.NewMem(tempID))
	t.Cleanup(func() { reg.CloseAll() })
	pool := buffer.NewPool(reg, 512, buffer.TwoLevel)
	vol, err := file.Format(pool, baseID)
	if err != nil {
		t.Fatal(err)
	}

	s := record.MustSchema(
		record.Field{Name: "id", Type: record.TInt},
		record.Field{Name: "v", Type: record.TInt},
	)
	f, err := vol.Create("t", s)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := btree.Create(pool, baseID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		rid, err := f.Insert(s.MustEncode(record.Int(int64(i)), record.Int(int64(i*i%977))))
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(btree.EncodeKey(record.Int(int64(i))), rid); err != nil {
			t.Fatal(err)
		}
	}
	vol.SaveIndex("t_id", tree)
	if err := vol.Save(); err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))
	return env, VolumeCatalog{vol}
}

func TestPlanIndexScan(t *testing.T) {
	env, cat := durableDB(t)
	n, err := Parse("iscan t t_id 100 109 | project id")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(env, cat, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(100+i) {
			t.Fatalf("row %d = %v (index order)", i, r)
		}
	}
}

func TestPlanIndexScanUnbounded(t *testing.T) {
	env, cat := durableDB(t)
	n, err := Parse("iscan t t_id")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(env, cat, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Fatalf("rows = %d", len(rows))
	}
	n, err = Parse("iscan t t_id 990")
	if err != nil {
		t.Fatal(err)
	}
	rows, err = Run(env, cat, n)
	if err != nil || len(rows) != 10 {
		t.Fatalf("lower-bounded rows = %d, %v", len(rows), err)
	}
}

func TestPlanIndexScanErrors(t *testing.T) {
	env, cat := durableDB(t)
	for _, src := range []string{
		"iscan t", "iscan t t_id x", "iscan t t_id 1 2 3", "scan t | iscan t t_id",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	n, _ := Parse("iscan t nosuchindex")
	if _, err := Run(env, cat, n); err == nil {
		t.Fatal("unknown index accepted")
	}
	// MapCatalog has no index support.
	n2, _ := Parse("iscan t t_id")
	if _, err := Run(env, MapCatalog{}, n2); err == nil {
		t.Fatal("index scan on plain catalog accepted")
	}
}

func TestPlanIndexScanExplain(t *testing.T) {
	n, err := Parse("iscan t t_id 5 9 | filter v > 0")
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(n)
	if !strings.Contains(out, "iscan t via t_id from 5 to 9") {
		t.Fatalf("Explain = %q", out)
	}
}
