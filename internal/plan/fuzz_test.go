package plan

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary scripts to the plan-language parser. The
// parser fronts the query server's POST /query endpoint, so it must never
// panic, whatever arrives. For scripts that do parse, the properties the
// serving layer leans on must hold: Normalize is idempotent and
// normalizing never turns a parseable script unparseable (the plan cache
// keys on the normal form but compiles the original), Explain and the
// producer-goroutine estimate (admission weights) are total.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"scan emp",
		"scan emp | filter salary > 1200 AND name LIKE 'a%' | sort salary desc",
		"with depts = scan dept | filter budget > 100\nscan emp | join hash depts on dept = id",
		"pscan emp 4 | exchange producers=4 packet=7 flow=on slack=2 | agg group dept compute count, sum(salary)",
		"iscan emp emp_id 10 20 | project id, salary * 1.1 as raised",
		"scan a | distinct sort | exchange producers=2 partition=hash(x) merge=x:asc",
		"with b = scan b\nscan a | union merge b",
		"with b = scan b\nscan a | divide hash b quot s div c on c",
		"scan e\n| filter dept = 2  # trailing comment\n| project name as n",
		"scan emp | exchange producers=2 fork=tree forkcost=1ms broadcast inline",
		// Regression seeds: keyword overlap used to slice out of bounds.
		"scan emp | agg group compute x",
		"scan emp | divide d quot div x on y",
		"scan emp | agg hash group  compute count",
		"with d = scan d\nscan emp | divide hash d quot a div on c",
		"scan emp | exchange partition=HASH(",
		"scan emp | join loops x on",
		"with = scan t\nscan t",
		"| filter x = 1",
		"scan emp |",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)

		norm := Normalize(src)
		if again := Normalize(norm); again != norm {
			t.Fatalf("Normalize not idempotent:\n 1: %q\n 2: %q", norm, again)
		}
		if err != nil {
			if !strings.HasPrefix(err.Error(), "plan: ") {
				t.Fatalf("error without plan prefix: %v", err)
			}
			return
		}
		// A parseable script stays parseable in normal form — the cache
		// would otherwise compile a different plan than it keyed.
		if _, err := Parse(norm); err != nil {
			t.Fatalf("normal form of parseable script fails: %v\nsource: %q\nnormal: %q", err, src, norm)
		}
		if p := ProducerGoroutines(n); p < 0 {
			t.Fatalf("negative producer estimate %d for %q", p, src)
		}
		_ = Explain(n)
	})
}
