package plan

import (
	"repro/internal/core"
)

// Template is a reusable compiled-plan handle: the parsed tree plus the
// facts a serving layer needs before executing it (normalized source for
// cache keying, worst-case producer-goroutine footprint for admission
// control). A Template is immutable after Compile — Build never writes to
// the tree — so one cached Template may be instantiated concurrently; each
// Build call yields a fresh iterator tree.
type Template struct {
	root      *Node
	source    string
	producers int
}

// Compile parses a plan script into a Template.
func Compile(src string) (*Template, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Template{root: n, source: Normalize(src), producers: ProducerGoroutines(n)}, nil
}

// Root returns the plan tree. Callers must treat it as read-only.
func (t *Template) Root() *Node { return t.root }

// Source returns the normalized plan text the template was compiled from.
func (t *Template) Source() string { return t.source }

// ProducerGoroutines returns the worst-case number of producer goroutines
// the plan forks when executed (see the function of the same name).
func (t *Template) ProducerGoroutines() int { return t.producers }

// Build instantiates a fresh iterator tree from the template.
func (t *Template) Build(env *core.Env, cat Catalog, o BuildOptions) (core.Iterator, *Analysis, error) {
	return BuildWith(env, cat, t.root, o)
}

// ProducerGoroutines computes the worst-case number of producer
// goroutines a plan forks: every non-inline exchange forks Producers
// goroutines per instantiation, and an exchange nested inside a producer
// subtree is instantiated once per enclosing producer, so counts multiply
// down the tree. Inline exchanges fork nothing. Admission control uses
// this as the weight of a query against the process-wide producer budget.
func ProducerGoroutines(n *Node) int {
	return producerGoroutines(n, 1)
}

func producerGoroutines(n *Node, mult int) int {
	if n == nil {
		return 0
	}
	total := 0
	if n.Kind == KindExchange && n.X != nil && !n.X.Inline {
		p := n.X.Producers
		if p < 1 {
			p = 1
		}
		total += mult * p
		mult *= p
	}
	for _, in := range n.Inputs {
		total += producerGoroutines(in, mult)
	}
	return total
}
