package plan

import (
	"fmt"
	"regexp"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage/file"
)

// The costing pass: a Template compiled from plan text describes *what*
// to compute; the knobs the text leaves open — exchange degree of
// parallelism, packet sizes, hash-vs-merge match strategy — are picked
// here from catalog cardinalities. Strategy choices whose best answer
// depends on run-time state are not frozen: they become choose-plan
// nodes whose decision function consults the catalog again at Open
// (dynamic query evaluation plans, Graefe & Ward SIGMOD 1989), so a
// cached plan adapts without being re-costed.
//
// Estimation is deliberately coarse — selectivity defaults, distinct
// counts from ANALYZE when present — because the loop closes elsewhere:
// after execution the server folds each node's *observed* cardinality
// back into the plan-cache entry (CostedPlan.Observed), and a gross
// mis-estimate (MisEstimated) forces exactly one re-cost with the
// observed numbers substituted for the failed estimates.

// DefaultCardinality is assumed for tables the catalog has no record
// counts for.
const DefaultCardinality = 1000

// DefaultHashBuildThreshold is the build-side record count at which the
// choose-plan decision function tips a match from hash (small build
// fits an in-memory table) to merge (sort both sides). Exported so
// tests can exercise both alternatives.
var DefaultHashBuildThreshold int64 = 1 << 16

// MisEstimateFactor is the estimated-vs-observed cardinality ratio
// beyond which a plan-cache entry is re-costed.
const MisEstimateFactor = 4

// CostedPlan is the result of costing a Template: a derived Template
// whose tree has every open knob filled (safe to build concurrently,
// like any Template), per-node cardinality estimates for EXPLAIN
// ANALYZE, and the node correspondence needed to fold observed
// cardinalities back onto the original template's nodes.
type CostedPlan struct {
	// Template is the costed derivation; its ProducerGoroutines reflect
	// the chosen degree of parallelism, so admission control must weigh
	// this template, not the original.
	Template *Template
	// Estimates maps every node of Template's tree to its estimated
	// output cardinality (pass as BuildOptions.Estimates).
	Estimates map[*Node]int64
	// origin maps costed nodes back to the original template's nodes.
	// Nodes the pass invented (choose-plan wrappers, sorts under a merge
	// alternative) have no origin.
	origin map[*Node]*Node
}

// Cost derives a costed plan from the template. cat supplies statistics
// when it implements StatsCatalog (and resolves schemas for selectivity
// refinement); observed, when non-nil, substitutes previously observed
// cardinalities for this pass's estimates, keyed by the *original*
// template's nodes (see Observed) — re-costing with its own observations
// is how a mis-estimated plan converges. The template itself is never
// written; the costed tree is a deep copy.
func (t *Template) Cost(cat Catalog, observed map[*Node]int64) *CostedPlan {
	c := &coster{
		cat:      cat,
		observed: observed,
		est:      map[*Node]int64{},
		origin:   map[*Node]*Node{},
	}
	if sc, ok := cat.(StatsCatalog); ok {
		c.sc = sc
	}
	root := c.clone(t.root)
	root, _ = c.walk(root)
	return &CostedPlan{
		Template:  &Template{root: root, source: t.source, producers: ProducerGoroutines(root)},
		Estimates: c.est,
		origin:    c.origin,
	}
}

// Observed extracts per-node observed cardinalities from a completed
// run's Analysis, keyed by the original template's nodes so they can be
// stored on the plan-cache entry and fed to a later Cost call. Only
// nodes that actually opened contribute — the unchosen alternative of a
// choose-plan reports zeros that mean "never ran", not "empty".
func (c *CostedPlan) Observed(an *Analysis) map[*Node]int64 {
	out := map[*Node]int64{}
	for n, orig := range c.origin {
		st := an.Stats(n)
		if st == nil || st.Opens.Load() == 0 {
			continue
		}
		out[orig] = st.Rows.Load()
	}
	return out
}

// MisEstimated reports the worst estimated-vs-observed cardinality
// mismatch of a completed run, when it exceeds factor (ratios compare
// (x+1)s so zero rows don't divide). Nodes that never opened are
// skipped. A true return is the re-plan trigger.
func (c *CostedPlan) MisEstimated(an *Analysis, factor int64) (worst *Node, est, obs int64, ok bool) {
	var worstRatio int64
	for n, e := range c.Estimates {
		st := an.Stats(n)
		if st == nil || st.Opens.Load() == 0 {
			continue
		}
		o := st.Rows.Load()
		hi, lo := e, o
		if hi < lo {
			hi, lo = lo, hi
		}
		ratio := (hi + 1) / (lo + 1)
		if ratio > factor && ratio > worstRatio {
			worst, est, obs, ok = n, e, o, true
			worstRatio = ratio
		}
	}
	return worst, est, obs, ok
}

type coster struct {
	cat      Catalog
	sc       StatsCatalog
	observed map[*Node]int64 // keyed by original template nodes
	est      map[*Node]int64 // keyed by costed nodes
	origin   map[*Node]*Node // costed -> original
}

// clone deep-copies a plan subtree, recording node correspondence. XOpts
// is copied (the pass mutates knobs); term/key slices are shared — no
// build path writes to them.
func (c *coster) clone(n *Node) *Node {
	if n == nil {
		return nil
	}
	cp := *n
	if n.X != nil {
		x := *n.X
		cp.X = &x
	}
	if n.Choose != nil {
		ch := *n.Choose
		cp.Choose = &ch
	}
	cp.Inputs = make([]*Node, len(n.Inputs))
	for i, in := range n.Inputs {
		cp.Inputs[i] = c.clone(in)
	}
	if orig, ok := c.origin[n]; ok {
		// Cloning an already-cloned node (merge alternatives): keep
		// pointing at the true original.
		c.origin[&cp] = orig
	} else {
		c.origin[&cp] = n
	}
	return &cp
}

// cloneCosted re-clones an already-walked subtree, carrying estimates
// over — used for the second alternative of a choose-plan, which must
// not share node pointers with the first (per-node stats key on them).
func (c *coster) cloneCosted(n *Node) *Node {
	cp := c.clone(n)
	var copyEst func(from, to *Node)
	copyEst = func(from, to *Node) {
		if e, ok := c.est[from]; ok {
			c.est[to] = e
		}
		for i := range from.Inputs {
			copyEst(from.Inputs[i], to.Inputs[i])
		}
	}
	copyEst(n, cp)
	return cp
}

// walk costs a subtree bottom-up, filling open knobs as it returns. The
// returned node replaces n in the parent (a match may come back wrapped
// in a choose-plan).
func (c *coster) walk(n *Node) (*Node, int64) {
	for i := range n.Inputs {
		n.Inputs[i], _ = c.walk(n.Inputs[i])
	}
	est := c.estimate(n)
	c.est[n] = est

	switch n.Kind {
	case KindExchange:
		c.fillExchange(n, est)
	case KindMatch:
		if choose := c.maybeChoose(n, est); choose != nil {
			return choose, est
		}
	}
	return n, est
}

// fillExchange picks the knobs the plan text left open. The producer
// count is structural, not just a cost choice: each producer builds the
// whole subtree, so a non-partitioned subtree *duplicates* its input
// once per producer — the only correct fan-out is the partition count
// of the pscan below (or 1 when there is none).
func (c *coster) fillExchange(n *Node, est int64) {
	o := n.X
	if o == nil || o.Inline {
		return
	}
	if !o.ProducersSet {
		if parts := partitionsBelow(n.Inputs[0]); parts > 1 {
			o.Producers = parts
		}
	}
	if o.PacketSize == 0 {
		// Small results keep latency low with small packets; big streams
		// amortise port overhead with full ones.
		switch {
		case est < 1_000:
			o.PacketSize = 16
		case est < 50_000:
			o.PacketSize = 64
		default:
			o.PacketSize = 256
		}
	}
}

// partitionsBelow reports the partition count of the pscan feeding a
// producer subtree, or 0: the walk mirrors build-time instantiation,
// descending every input but stopping at nested exchanges (their
// producer counts are their own concern).
func partitionsBelow(n *Node) int {
	if n == nil || n.Kind == KindExchange {
		return 0
	}
	if n.Kind == KindPartitionedScan {
		return n.Partitions
	}
	for _, in := range n.Inputs {
		if p := partitionsBelow(in); p > 0 {
			return p
		}
	}
	return 0
}

// maybeChoose turns an equality match whose algorithm the text left
// open into a choose-plan node: alternative 0 runs the hash match as
// compiled, alternative 1 sorts both sides and merge-matches. The
// decision — build side small enough for an in-memory hash table? — is
// taken at Open against the catalog's stats at that moment.
func (c *coster) maybeChoose(n *Node, est int64) *Node {
	if n.AlgoSet || n.Algo != AlgoHash || n.AllFieldKeys || len(n.Inputs) != 2 {
		return nil
	}
	if n.LeftTerms == nil && n.LeftKey == nil {
		return nil
	}
	table := baseTable(n.Inputs[1])
	if table == "" {
		// No single base table to consult at Open; keep the hash match.
		return nil
	}

	hashAlt := n
	mergeAlt := c.cloneCosted(n)
	mergeAlt.Algo = AlgoSort
	mergeAlt.AlgoSet = true
	for i, in := range mergeAlt.Inputs {
		terms := mergeAlt.LeftTerms
		if i == 1 {
			terms = mergeAlt.RightTerms
		}
		sort := &Node{Kind: KindSort, SortTerms: terms, Inputs: []*Node{in}}
		if terms == nil {
			key := mergeAlt.LeftKey
			if i == 1 {
				key = mergeAlt.RightKey
			}
			sort.SortTerms = nil
			sort.SortBy = sortByKey(key)
		}
		c.est[sort] = c.est[in]
		mergeAlt.Inputs[i] = sort
	}

	choose := &Node{
		Kind:   KindChoosePlan,
		Inputs: []*Node{hashAlt, mergeAlt},
		Choose: &ChooseSpec{
			Table:     table,
			Threshold: DefaultHashBuildThreshold,
			Small:     0,
			Large:     1,
			Default:   0,
			Labels:    []string{"hash", "merge"},
		},
	}
	c.est[choose] = est
	return choose
}

// baseTable resolves the single base table a subtree reads, descending
// record-preserving single-input chains; "" when the subtree is not
// rooted in a plain scan (partitioned and index scans have no single
// catalog entry to consult at Open).
func baseTable(n *Node) string {
	for n != nil {
		switch n.Kind {
		case KindScan:
			return n.Table
		case KindFilter, KindProject, KindSort, KindDistinct, KindExchange:
			if len(n.Inputs) != 1 {
				return ""
			}
			n = n.Inputs[0]
		default:
			return ""
		}
	}
	return ""
}

// eqPredRE matches the simple equality predicates the estimator can
// refine with distinct counts: "field = literal".
var eqPredRE = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*) = (-?[0-9]+|'[^']*')$`)

// estimate computes a node's output cardinality from its children's
// (already recorded in c.est). An observed cardinality from a previous
// run of the same template overrides the model — that is the feedback
// loop converging.
func (c *coster) estimate(n *Node) int64 {
	if o, ok := c.observed[c.origin[n]]; ok {
		return o
	}
	in := func(i int) int64 {
		if i >= len(n.Inputs) {
			return 0
		}
		return c.est[n.Inputs[i]]
	}
	switch n.Kind {
	case KindScan:
		return c.tableCard(n.Table)
	case KindPartitionedScan:
		var sum int64
		known := false
		for g := 0; g < n.Partitions; g++ {
			if st, ok := c.stats(fmt.Sprintf("%s.%d", n.Table, g)); ok {
				sum += int64(st.Records)
				known = true
			}
		}
		if !known {
			return DefaultCardinality
		}
		return sum
	case KindIndexScan:
		card := c.tableCard(n.Table)
		if n.LoKey != nil || n.HiKey != nil {
			return maxi(card/3, 1)
		}
		return card
	case KindFilter:
		card := in(0)
		if m := eqPredRE.FindStringSubmatch(n.Pred); m != nil && len(n.Inputs) == 1 && n.Inputs[0].Kind == KindScan {
			if d := c.fieldDistinct(n.Inputs[0].Table, m[1]); d > 0 {
				return maxi(card/d, 1)
			}
		}
		return maxi(card/3, 1)
	case KindProject, KindSort, KindExchange:
		return in(0)
	case KindDistinct:
		return maxi(in(0)/2, 1)
	case KindAggregate:
		card := in(0)
		if len(n.GroupTerms) == 1 && n.GroupTerms[0].ByName && len(n.Inputs) == 1 && n.Inputs[0].Kind == KindScan {
			if d := c.fieldDistinct(n.Inputs[0].Table, n.GroupTerms[0].Name); d > 0 {
				return mini(d, card)
			}
		}
		return maxi(card/10, 1)
	case KindMatch:
		l, r := in(0), in(1)
		switch n.MatchOp {
		case core.MatchUnion:
			return l + r
		case core.MatchIntersect:
			return mini(l, r)
		case core.MatchDifference, core.MatchAntiDifference:
			return l
		case core.MatchSemi, core.MatchAnti:
			return maxi(l/2, 1)
		default: // join and outer variants: assume a key/foreign-key match
			return maxi(maxi(l, r), 1)
		}
	case KindNestedLoops:
		return maxi(in(0)*in(1)/3, 1)
	case KindDivision:
		return maxi(in(0)/maxi(in(1), 1), 1)
	case KindChoosePlan:
		return in(0)
	default:
		return in(0)
	}
}

func (c *coster) stats(name string) (file.TableStats, bool) {
	if c.sc == nil {
		return file.TableStats{}, false
	}
	return c.sc.LookupStats(name)
}

func (c *coster) tableCard(name string) int64 {
	if st, ok := c.stats(name); ok {
		return int64(st.Records)
	}
	return DefaultCardinality
}

// fieldDistinct resolves a field name against a table's recorded schema
// and returns its ANALYZEd distinct estimate (0 when unknown).
func (c *coster) fieldDistinct(table, field string) int64 {
	st, ok := c.stats(table)
	if !ok || st.Distinct == nil || c.cat == nil {
		return 0
	}
	f, err := c.cat.Lookup(table)
	if err != nil || f.Schema() == nil {
		return 0
	}
	idx := f.Schema().Index(field)
	if idx < 0 {
		return 0
	}
	return st.DistinctOf(idx)
}

func sortByKey(key record.Key) []record.SortSpec {
	spec := make([]record.SortSpec, len(key))
	for i, f := range key {
		spec[i] = record.SortSpec{Field: f}
	}
	return spec
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
