package plan

import (
	"errors"
	"testing"
)

// TestParseErrorGolden pins the rendered form of a parse failure: the
// query server returns this text in 400 bodies, so it must name the line
// and stage of the offending input, not just the symptom.
func TestParseErrorGolden(t *testing.T) {
	src := `# nightly report
scan emp
| filter salary > 1200
| projct name, salary
| sort salary desc`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("malformed plan accepted")
	}
	const want = `plan: line 4, stage 3: unknown stage "projct"`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 4 || pe.Stage != 3 || pe.Op != "projct" {
		t.Fatalf("position = line %d stage %d op %q, want line 4 stage 3 op \"projct\"", pe.Line, pe.Stage, pe.Op)
	}
}

// TestParseErrorPositions checks position reporting across error shapes:
// statement-level failures, first-line failures, and continuation lines.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		src        string
		line, stag int
	}{
		{"scan", 1, 1},                              // first line, first stage
		{"scan emp | filter", 1, 2},                 // second stage, same line
		{"scan emp\n| filter x = 1\n| bogus", 3, 3}, // continuation line
		{"with x scan emp\nscan emp", 1, 0},         // statement-level: missing '='
		{"scan a\n\n# c\nscan b", 4, 0},             // second main pipeline
		{"scan emp |", 1, 2},                        // trailing empty stage
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error %T, want *ParseError", c.src, err)
			continue
		}
		if pe.Line != c.line || pe.Stage != c.stag {
			t.Errorf("Parse(%q): line %d stage %d, want line %d stage %d (%v)",
				c.src, pe.Line, pe.Stage, c.line, c.stag, err)
		}
	}
}

// TestParseKeywordOverlapNoPanic regresses the slice-bounds panics found
// by the fuzz target: agg/divide keyword lists that overlap must produce
// usage errors, never panic.
func TestParseKeywordOverlapNoPanic(t *testing.T) {
	bad := []string{
		"scan emp | agg group compute x",
		"scan emp | agg sort group compute sum(x)",
		"with d = scan d\nscan emp | divide d quot div x on y",
		"with d = scan d\nscan emp | divide hash d quot a div on c",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// TestNormalize pins the canonical form used as the plan-cache key.
func TestNormalize(t *testing.T) {
	src := `# report
with depts = scan dept
scan emp   # base table
| filter dept = 2
| join hash depts on dept = id`
	want := "with depts = scan dept\nscan emp | filter dept = 2 | join hash depts on dept = id"
	if got := Normalize(src); got != want {
		t.Fatalf("Normalize = %q, want %q", got, want)
	}
	// Intra-stage whitespace is preserved: it may sit inside a string
	// literal, where collapsing would change the query's meaning.
	lit := "scan emp | filter name = 'a  b'"
	if got := Normalize(lit); got != lit {
		t.Fatalf("Normalize(%q) = %q, want unchanged", lit, got)
	}
}

// TestProducerGoroutines pins the admission weight computation, including
// the per-producer multiplication for nested exchanges.
func TestProducerGoroutines(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"scan emp", 0},
		{"scan emp | exchange producers=4", 4},
		{"scan emp | exchange inline", 0},
		{"pscan emp 2 | exchange producers=2 | sort id | exchange producers=3", 3 + 3*2},
		{"with d = scan d | exchange producers=2\nscan emp | join hash d on a = b | exchange producers=3", 3 + 3*2},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := ProducerGoroutines(n); got != c.want {
			t.Errorf("ProducerGoroutines(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}
