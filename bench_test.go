// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (§5) as testing.B targets; cmd/volcano-bench
// produces the same numbers as formatted reports. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
)

// benchRecords keeps individual b.N iterations fast; volcano-bench runs
// the paper-scale 100,000-record configuration.
const benchRecords = 20000

func reportPass(b *testing.B, res bench.PassResult) {
	b.ReportMetric(float64(res.Elapsed.Nanoseconds())/float64(res.Records), "ns/record")
}

// BenchmarkT1_NoExchange is §5 configuration (a): create records, unfix
// them, no exchange operator.
func BenchmarkT1_NoExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunPass(bench.PassConfig{Records: benchRecords, Stages: 0})
		if err != nil {
			b.Fatal(err)
		}
		reportPass(b, res)
	}
}

// BenchmarkT1_InlineExchanges is configuration (b): three exchange
// operators in the mode that creates no new processes — three extra
// procedure calls per record; the paper derives 25.73 µs/record/exchange.
func BenchmarkT1_InlineExchanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunPass(bench.PassConfig{Records: benchRecords, Stages: 3, Inline: true})
		if err != nil {
			b.Fatal(err)
		}
		reportPass(b, res)
	}
}

// BenchmarkT1_PipelineFlowControl is configuration (c): a pipeline of
// four process groups, flow control enabled.
func BenchmarkT1_PipelineFlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunPass(bench.PassConfig{
			Records: benchRecords, Stages: 3, FlowControl: true, Slack: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportPass(b, res)
	}
}

// BenchmarkT1_PipelineNoFlowControl is configuration (c) without flow
// control (paper: 16.16 s vs 16.21 s).
func BenchmarkT1_PipelineNoFlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunPass(bench.PassConfig{Records: benchRecords, Stages: 3})
		if err != nil {
			b.Fatal(err)
		}
		reportPass(b, res)
	}
}

// BenchmarkExchangeE2EPlan is the end-to-end plan benchmark of the
// committed BENCH_5.json baseline: the full Figure-2 topology (3→3→3→1,
// three exchange boundaries, flow control, the standard 83-record
// packets) from record creation to the sink. allocs/op here watches the
// whole plan, so a per-record allocation regression anywhere in the
// exchange path moves it by tens of thousands.
func BenchmarkExchangeE2EPlan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig2aPoint(benchRecords, 83)
		if err != nil {
			b.Fatal(err)
		}
		reportPass(b, res)
	}
}

// BenchmarkExchangeE2EPlanBatch is BenchmarkExchangeE2EPlan under the
// batch-at-a-time protocol: the same 3→3→3→1 topology and 83-record
// packets, with generators, exchange producers and the sink all moving
// batches of 83 records. The gap to the row benchmark is the measured
// worth of the batch protocol — amortised iterator calls, scratch-buffer
// encoding and wholesale packet lending; the committed BENCH_6.json
// baseline pins it against regression.
func BenchmarkExchangeE2EPlanBatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig2aPointBatch(benchRecords, 83, 83)
		if err != nil {
			b.Fatal(err)
		}
		reportPass(b, res)
	}
}

// BenchmarkFig2a sweeps the packet size on the 3→3→3→1 topology with
// three slack packets, reproducing Figure 2a (and, on a log-log scale,
// Figure 2b).
func BenchmarkFig2a(b *testing.B) {
	for _, ps := range bench.Fig2aPacketSizes {
		b.Run(fmt.Sprintf("packet=%d", ps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunFig2aPoint(benchRecords, ps)
				if err != nil {
					b.Fatal(err)
				}
				reportPass(b, res)
			}
		})
	}
}

// runAblation benches one ablation configuration table; each iteration
// re-runs the whole comparison so relative numbers stay meaningful.
func runAblation(b *testing.B, f func() (*bench.Ablation, error)) {
	b.Helper()
	var last *bench.Ablation
	for i := 0; i < b.N; i++ {
		a, err := f()
		if err != nil {
			b.Fatal(err)
		}
		last = a
	}
	for _, l := range last.Lines {
		b.ReportMetric(float64(l.Elapsed.Microseconds()), "µs:"+sanitize(l.Name))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	if len(out) > 24 {
		out = out[:24]
	}
	return string(out)
}

func BenchmarkAblationFlowControl(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationFlowControl(benchRecords / 2) })
}

func BenchmarkAblationForkScheme(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationForkScheme(8, time.Millisecond) })
}

func BenchmarkAblationInlineExchange(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationInline(benchRecords / 2) })
}

func BenchmarkAblationPartitioning(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationPartitioning(benchRecords / 2) })
}

func BenchmarkAblationBroadcast(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationBroadcast(benchRecords / 4) })
}

func BenchmarkAblationMatchAlgorithms(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationMatch(5000) })
}

func BenchmarkAblationDivision(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationDivision(500, 12, 3) })
}

func BenchmarkAblationSupportFunctions(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationSupportFunctions(benchRecords) })
}

func BenchmarkAblationBufferLocking(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationBufferLocking(benchRecords/2, 4) })
}

func BenchmarkParallelSort(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) { return bench.AblationParallelSort(benchRecords, 4) })
}

func BenchmarkAblationSharedNothing(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) {
		return bench.AblationSharedNothing(benchRecords/2, 200*time.Microsecond)
	})
}

func BenchmarkAblationRunGeneration(b *testing.B) {
	runAblation(b, func() (*bench.Ablation, error) {
		return bench.AblationRunGeneration(benchRecords, 512)
	})
}
